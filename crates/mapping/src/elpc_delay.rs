//! ELPC minimum end-to-end delay with node reuse (§3.1.1).
//!
//! Fills the Fig. 1 two-dimensional table column by column: cell `T_j(v)`
//! holds the minimum total delay of mapping the first `j+1` modules (0-based
//! here) onto a walk from the source `vs` ending at `v`. Each new column
//! considers the two sub-cases of the paper's correctness proof:
//!
//! 1. **stay** — module `j` joins the group on the same node `v`
//!    (`T_{j-1}(v) + c_j·m_{j-1}/p_v`), and
//! 2. **move** — module `j` starts a new group on `v`, fed over an incoming
//!    link from a neighbor `u`
//!    (`T_{j-1}(u) + c_j·m_{j-1}/p_v + transfer(m_{j-1}, u→v)`).
//!
//! The base column pins module 0 (the data source) to `vs` with zero cost;
//! this deliberately *includes* `T_1(vs)` via the stay case, which the
//! paper's Eq. 4 omits but its own Fig. 3 solution requires (DESIGN.md
//! erratum 2).
//!
//! Complexity: `O(n·(k + |E|))` time, `O(n·k)` parent space — the paper's
//! `O(n·|E|)` with the `k` term made explicit for the stay scan.

use crate::{
    AssignmentSolution, CostModel, DelaySolution, Instance, Mapping, MappingError, Result,
    SolveContext,
};
use elpc_netgraph::NodeId;

/// Back-pointer for path reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Parent {
    /// Unreached cell.
    None,
    /// Stay on the same node as module `j-1`.
    Stay,
    /// Move from neighbor `u` (module `j-1` runs on `u`).
    Move(NodeId),
}

/// Solves the minimum end-to-end delay problem. Returns the optimal mapping
/// and its Eq. 1 delay.
///
/// Errors with [`MappingError::Infeasible`] when the destination cannot be
/// reached within `n - 1` hops (§4.3: "the shortest end-to-end path is
/// longer than the pipeline").
pub fn solve(inst: &Instance<'_>, cost: &CostModel) -> Result<DelaySolution> {
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = pipe.len();
    let k = net.node_count();
    debug_assert!(n >= 2, "Pipeline guarantees >= 2 modules");

    // T[v] for the previous column; module 0 sits on src at zero cost.
    let mut prev = vec![f64::INFINITY; k];
    prev[inst.src.index()] = 0.0;
    // parents[j][v] for columns j = 1..n (column 0 is implicit).
    let mut parents: Vec<Vec<Parent>> = Vec::with_capacity(n - 1);

    let mut cur = vec![f64::INFINITY; k];
    for j in 1..n {
        let in_bytes = pipe.input_bytes(j);
        let work = pipe.compute_work(j);
        let mut parent = vec![Parent::None; k];
        // sub-case (i): stay on the node running module j-1
        for v in 0..k {
            cur[v] = if prev[v].is_finite() {
                let t = prev[v] + work / net.power(NodeId::from_index(v));
                parent[v] = Parent::Stay;
                t
            } else {
                f64::INFINITY
            };
        }
        // sub-case (ii): arrive over an incoming edge u → v
        for (eid, e) in net.graph().edges() {
            let u = e.src.index();
            if !prev[u].is_finite() {
                continue;
            }
            let v = e.dst.index();
            let t = prev[u] + work / net.power(e.dst) + cost.edge_transfer_ms(net, eid, in_bytes);
            if t < cur[v] {
                cur[v] = t;
                parent[v] = Parent::Move(e.src);
            }
        }
        parents.push(parent);
        std::mem::swap(&mut prev, &mut cur);
    }

    let total = prev[inst.dst.index()];
    if !total.is_finite() {
        return Err(MappingError::Infeasible(format!(
            "destination {} is more than {} hops from source {}",
            inst.dst,
            n - 1,
            inst.src
        )));
    }

    // walk parents back from (n-1, dst)
    let mut assignment = vec![inst.dst; n];
    let mut node = inst.dst;
    for j in (1..n).rev() {
        assignment[j] = node;
        match parents[j - 1][node.index()] {
            Parent::Stay => {}
            Parent::Move(u) => node = u,
            Parent::None => unreachable!("finite cells always have Stay/Move parents"),
        }
    }
    assignment[0] = node;
    debug_assert_eq!(assignment[0], inst.src, "module 0 must end on the source");

    let mapping = Mapping::from_assignment(&assignment)?;
    debug_assert!(
        {
            let check = cost.delay_ms(inst, &mapping)?;
            (check - total).abs() <= 1e-6 * total.max(1.0)
        },
        "DP objective must match Eq. 1 evaluation"
    );
    Ok(DelaySolution {
        mapping,
        delay_ms: total,
    })
}

/// ELPC-delay on the network's *metric closure* (routed-overlay variant).
///
/// The strict DP above charges transfers at direct-link cost and therefore
/// must place a module on every traversed node. Free-placement baselines
/// (Streamline) are instead evaluated under routed transport — the best
/// multi-hop route between consecutive hosts ([`crate::routed`]). This
/// variant runs the same dynamic program over the *complete overlay* whose
/// `u → v` cost is the routed transfer time, making it **optimal for the
/// routed objective**: no per-module placement, Streamline's included, can
/// beat it. Use it whenever baselines are compared under routed semantics
/// (the Fig. 2/5 tables do).
///
/// Complexity: `O(n · k · (|E| + k) log k)` Dijkstra work in the worst
/// case, but every (payload, host) shortest-path tree comes from the
/// context's shared [`crate::MetricClosure`], so repeated solves on one
/// instance — and sibling solvers in a comparison — pay it only once.
///
/// The `O(k²)` per-stage relax loop runs on
/// [`SolveContext::warm_threads`] chunked column workers (`0` = all CPUs):
/// each worker owns a contiguous block of destination cells and scans every
/// source row in ascending order, so the result is bit-for-bit identical at
/// any thread count. At `threads == 1` no worker threads are spawned and
/// the trees are still fetched lazily per stage.
pub fn solve_routed_ctx(ctx: &SolveContext<'_>) -> Result<AssignmentSolution> {
    let inst = ctx.instance();
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = pipe.len();
    let k = net.node_count();
    // below the crossover size a per-stage scope spawn costs more than the
    // whole O(k²) relax; the serial path computes identical cells
    let threads = if k >= crate::context::MIN_PARALLEL_RELAX_NODES_DELAY {
        crate::context::effective_threads(ctx.warm_threads())
    } else {
        1
    };

    // pre-build the per-source trees in parallel when the context asks for
    // it (no-op on lazy serial contexts); the DP below then runs hot
    ctx.warm_routed_dp();

    let mut prev = vec![f64::INFINITY; k];
    prev[inst.src.index()] = 0.0;
    let mut parents: Vec<Vec<Option<NodeId>>> = Vec::with_capacity(n - 1);
    // one cell per destination node: (best delay, parent host)
    let mut cur: Vec<(f64, Option<NodeId>)> = vec![(f64::INFINITY, None); k];

    for j in 1..n {
        let in_bytes = pipe.input_bytes(j);
        let work = pipe.compute_work(j);
        // the per-source trees this column consults, fetched in ascending
        // source order (the exact queries the serial loop used to make)
        let trees: Vec<Option<std::sync::Arc<elpc_netgraph::algo::ShortestPaths>>> = prev
            .iter()
            .enumerate()
            .map(|(u, &p)| {
                p.is_finite()
                    .then(|| ctx.routed_from(NodeId::from_index(u), in_bytes))
            })
            .collect();
        // one destination cell: stay on the same host, then relax every
        // incoming routed edge in ascending source order — the same float
        // comparison sequence whichever chunk the cell lands in
        let prev_col = &prev;
        crate::context::relax_columns_chunked(threads, &mut cur, |v, cell| {
            let vid = NodeId::from_index(v);
            let compute = work / net.power(vid);
            let (mut best, mut par) = if prev_col[v].is_finite() {
                (prev_col[v] + compute, Some(vid))
            } else {
                (f64::INFINITY, None)
            };
            for (u, tree) in trees.iter().enumerate() {
                let Some(tree) = tree else { continue };
                if u == v || tree.dist[v].is_infinite() {
                    continue;
                }
                let t = prev_col[u] + tree.dist[v] + compute;
                if t < best {
                    best = t;
                    par = Some(NodeId::from_index(u));
                }
            }
            *cell = (best, par);
        });
        parents.push(cur.iter().map(|&(_, par)| par).collect());
        for (p, &(best, _)) in prev.iter_mut().zip(&cur) {
            *p = best;
        }
    }

    let total = prev[inst.dst.index()];
    if !total.is_finite() {
        return Err(MappingError::Infeasible(format!(
            "destination {} is unreachable from source {}",
            inst.dst, inst.src
        )));
    }
    let mut assignment = vec![inst.dst; n];
    let mut node = inst.dst;
    for j in (1..n).rev() {
        assignment[j] = node;
        node = parents[j - 1][node.index()].expect("finite cells have parents");
    }
    assignment[0] = node;
    debug_assert_eq!(assignment[0], inst.src);
    debug_assert!({
        let re = crate::routed::routed_delay_ms_ctx(ctx, &assignment)?;
        (re - total).abs() <= 1e-6 * total.max(1.0)
    });
    Ok(AssignmentSolution {
        assignment,
        objective_ms: total,
    })
}

/// [`solve_routed_ctx`] with a transient context (cold path). Prefer the
/// context form when running several solvers on one instance.
pub fn solve_routed(inst: &Instance<'_>, cost: &CostModel) -> Result<AssignmentSolution> {
    solve_routed_ctx(&SolveContext::new(*inst, *cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_netsim::Network;
    use elpc_pipeline::{Module, Pipeline};

    fn cost() -> CostModel {
        CostModel::default()
    }

    /// Fast source, weak middle, fast destination, on a 0-1-2 line.
    fn line_net() -> Network {
        let mut b = Network::builder();
        let n0 = b.add_node(100.0).unwrap();
        let n1 = b.add_node(1.0).unwrap();
        let n2 = b.add_node(100.0).unwrap();
        b.add_link(n0, n1, 100.0, 0.1).unwrap();
        b.add_link(n1, n2, 100.0, 0.1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn groups_heavy_work_away_from_weak_nodes() {
        let net = line_net();
        // 4 modules: heavy stage work; the optimum keeps compute on the
        // fast endpoints and leaves only a light module on the weak relay.
        let pipe = Pipeline::new(vec![
            Module::new(0.0, 1e4),
            Module::new(5.0, 1e4), // heavy
            Module::new(0.1, 1e4), // light
            Module::new(5.0, 0.0), // heavy sink (pinned to n2 anyway)
        ])
        .unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let sol = solve(&inst, &cost()).unwrap();
        let a = sol.mapping.assignment();
        assert_eq!(a[0], NodeId(0));
        assert_eq!(a[3], NodeId(2));
        // heavy module 1 stays on the fast source, not the weak middle
        assert_eq!(a[1], NodeId(0));
        // module 2 (light) is the one that crosses the weak node
        assert_eq!(a[2], NodeId(1));
    }

    #[test]
    fn single_node_instance_runs_everything_locally() {
        // src == dst: optimal is q = 1, pure local compute
        let net = line_net();
        let pipe = Pipeline::from_stages(1e4, &[(1.0, 1e3)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(0)).unwrap();
        let sol = solve(&inst, &cost()).unwrap();
        assert_eq!(sol.mapping.q(), 1);
        assert_eq!(sol.mapping.path(), &[NodeId(0)]);
        // (1*1e4 + 1*1e3)/100 = 110 ms
        assert!((sol.delay_ms - 110.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_when_pipeline_shorter_than_shortest_path() {
        let net = line_net();
        let pipe = Pipeline::new(vec![Module::new(0.0, 1e3), Module::new(1.0, 0.0)]).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        assert!(matches!(
            solve(&inst, &cost()),
            Err(MappingError::Infeasible(_))
        ));
    }

    #[test]
    fn delay_equals_cost_model_reevaluation() {
        let net = line_net();
        let pipe = Pipeline::from_stages(1e5, &[(2.0, 5e4), (1.0, 2e4)], 0.5).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let sol = solve(&inst, &cost()).unwrap();
        let re = cost().delay_ms(&inst, &sol.mapping).unwrap();
        assert!((sol.delay_ms - re).abs() < 1e-9);
    }

    #[test]
    fn mld_toggle_changes_the_reported_delay() {
        let net = line_net();
        let pipe = Pipeline::from_stages(1e5, &[(2.0, 5e4), (1.0, 2e4)], 0.5).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let with = solve(&inst, &CostModel { include_mld: true }).unwrap();
        let without = solve(&inst, &CostModel { include_mld: false }).unwrap();
        assert!(with.delay_ms > without.delay_ms);
    }

    #[test]
    fn fast_relay_attracts_heavy_modules() {
        // star: src —— hub (very fast) —— dst; hub power dwarfs endpoints
        let mut b = Network::builder();
        let s = b.add_node(1.0).unwrap();
        let hub = b.add_node(1000.0).unwrap();
        let d = b.add_node(1.0).unwrap();
        b.add_link(s, hub, 1000.0, 0.01).unwrap();
        b.add_link(hub, d, 1000.0, 0.01).unwrap();
        let net = b.build().unwrap();
        let pipe = Pipeline::new(vec![
            Module::new(0.0, 1e6),
            Module::new(10.0, 1e6),
            Module::new(10.0, 1e4),
            Module::new(0.1, 0.0),
        ])
        .unwrap();
        let inst = Instance::new(&net, &pipe, s, d).unwrap();
        let sol = solve(&inst, &CostModel::default()).unwrap();
        let a = sol.mapping.assignment();
        // both heavy middle modules run on the hub
        assert_eq!(a[1], hub);
        assert_eq!(a[2], hub);
    }

    #[test]
    fn loops_are_used_when_a_detour_node_is_fast() {
        // src=dst-adjacent triangle: src(slow) — helper(fast) — dst(slow),
        // plus src—dst direct. With 3 modules the optimum may bounce
        // src → helper → dst; verify the solver at least matches the
        // best enumerated alternative.
        let mut b = Network::builder();
        let s = b.add_node(1.0).unwrap();
        let h = b.add_node(500.0).unwrap();
        let d = b.add_node(1.0).unwrap();
        b.add_link(s, h, 1000.0, 0.01).unwrap();
        b.add_link(h, d, 1000.0, 0.01).unwrap();
        b.add_link(s, d, 1000.0, 0.01).unwrap();
        let net = b.build().unwrap();
        let pipe = Pipeline::new(vec![
            Module::new(0.0, 1e6),
            Module::new(20.0, 1e5),
            Module::new(0.5, 0.0),
        ])
        .unwrap();
        let inst = Instance::new(&net, &pipe, s, d).unwrap();
        let sol = solve(&inst, &CostModel::default()).unwrap();
        // heavy module 1 must run on the helper
        assert_eq!(sol.mapping.assignment()[1], h);
    }

    #[test]
    fn two_module_pipeline_on_adjacent_endpoints() {
        let net = line_net();
        let pipe = Pipeline::new(vec![Module::new(0.0, 1e4), Module::new(1.0, 0.0)]).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(1)).unwrap();
        let sol = solve(&inst, &cost()).unwrap();
        assert_eq!(sol.mapping.path(), &[NodeId(0), NodeId(1)]);
        // transfer 1e4 B over 100 Mbps = 0.8 ms + 0.1 MLD, compute 1e4/1
        assert!((sol.delay_ms - (0.9 + 1e4)).abs() < 1e-9);
    }

    #[test]
    fn solution_validates_under_the_instance() {
        let net = line_net();
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4), (2.0, 1e3)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(2)).unwrap();
        let sol = solve(&inst, &cost()).unwrap();
        sol.mapping.validate(&inst, false).unwrap();
    }

    #[test]
    fn routed_variant_never_loses_to_strict_or_streamline() {
        use rand::{Rng, SeedableRng};
        for seed in 0..15u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let k = rng.gen_range(4..9);
            let links = rng.gen_range(k - 1..=k * (k - 1) / 2);
            let topo = elpc_netgraph::gen::random_connected(k, links, &mut rng).unwrap();
            let powers: Vec<f64> = (0..k).map(|_| rng.gen_range(10.0..1000.0)).collect();
            let mut lr = rand_chacha::ChaCha8Rng::seed_from_u64(seed + 77);
            let net = Network::from_topology(
                &topo,
                |i| elpc_netsim::Node::with_power(powers[i]),
                |_, _| elpc_netsim::Link::new(lr.gen_range(1.0..1000.0), lr.gen_range(0.1..5.0)),
            )
            .unwrap();
            let n = rng.gen_range(2..=k.min(6));
            let pipe = elpc_pipeline::gen::PipelineSpec {
                modules: n,
                ..Default::default()
            }
            .generate(&mut rng)
            .unwrap();
            let inst = Instance::new(&net, &pipe, NodeId(0), NodeId((k - 1) as u32)).unwrap();
            let routed = solve_routed(&inst, &cost()).unwrap();
            // routed relaxation never loses to the strict optimum
            if let Ok(strict) = solve(&inst, &cost()) {
                assert!(
                    routed.objective_ms <= strict.delay_ms + 1e-9,
                    "seed {seed}: routed {} > strict {}",
                    routed.objective_ms,
                    strict.delay_ms
                );
            }
            // and provably dominates Streamline under the same semantics
            if let Ok(sl) = crate::streamline::solve_min_delay(&inst, &cost()) {
                assert!(
                    routed.objective_ms <= sl.objective_ms + 1e-9,
                    "seed {seed}: routed ELPC {} > Streamline {}",
                    routed.objective_ms,
                    sl.objective_ms
                );
            }
        }
    }

    #[test]
    fn routed_equals_strict_on_complete_networks() {
        // on a complete graph the best route between any pair is usually the
        // direct link, but multi-hop can still win when a relay pair of fat
        // links beats one thin link — so routed ≤ strict, with equality when
        // direct links dominate
        let mut b = Network::builder();
        let ns: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(100.0 * (i + 1) as f64).unwrap())
            .collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_link(ns[i], ns[j], 100.0, 0.5).unwrap();
            }
        }
        let net = b.build().unwrap();
        let pipe = Pipeline::from_stages(1e6, &[(2.0, 1e5)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, ns[0], ns[3]).unwrap();
        let strict = solve(&inst, &cost()).unwrap();
        let routed = solve_routed(&inst, &cost()).unwrap();
        assert!((routed.objective_ms - strict.delay_ms).abs() < 1e-9);
    }
}
