//! The Streamline baseline (§3.2), adapted to linear pipelines.
//!
//! Agarwalla et al.'s Streamline schedules a coarse-grain dataflow graph
//! onto grid resources as "a global greedy algorithm that expects to
//! maximize the throughput of an application by assigning the best
//! resources to the most needy stages in terms of computation and
//! communication requirements at each step". Its environment model is a
//! resource mesh ("n resources and n×n communication links"), so on the
//! paper's arbitrary sparse topologies its placements need not be adjacent
//! and are evaluated under the routed-transport relaxation
//! ([`crate::routed`]).
//!
//! Adaptation to linear pipelines (the form the ELPC paper benchmarks):
//!
//! 1. rank stages by *neediness* — estimated compute time on an average
//!    node plus estimated transfer time of the stage's incoming and
//!    outgoing data over an average link;
//! 2. walk stages in decreasing need; give each the *best available* node,
//!    scored by actual compute time plus routed transfers to whichever
//!    pipeline neighbors are already placed (the endpoints are always
//!    placed: §4.1 pins module 0 to the source and module `n-1` to the
//!    destination);
//! 3. delay mode allows co-location (node reuse); rate mode consumes each
//!    node (no reuse) and scores with `max` instead of `+`, matching the
//!    Eq. 2 objective.
//!
//! Complexity: `O(m · (k log k + |E|))` with the per-stage Dijkstra pair —
//! the `O(m·n²)` of §3.2 specialized to sparse graphs.

use crate::routed::{routed_bottleneck_ms_ctx, routed_delay_ms_ctx};
use crate::{AssignmentSolution, CostModel, Instance, MappingError, Result, SolveContext};
use elpc_netgraph::NodeId;

/// Streamline for the interactive (minimum delay, node-reuse) objective,
/// with a transient context (cold path).
pub fn solve_min_delay(inst: &Instance<'_>, cost: &CostModel) -> Result<AssignmentSolution> {
    solve_min_delay_ctx(&SolveContext::new(*inst, *cost))
}

/// Streamline minimum delay over a shared [`SolveContext`].
pub fn solve_min_delay_ctx(ctx: &SolveContext<'_>) -> Result<AssignmentSolution> {
    let assignment = place(ctx, Mode::Delay)?;
    let objective_ms = routed_delay_ms_ctx(ctx, &assignment)?;
    Ok(AssignmentSolution {
        assignment,
        objective_ms,
    })
}

/// Streamline for the streaming (maximum frame rate, no-reuse) objective,
/// with a transient context (cold path).
pub fn solve_max_rate(inst: &Instance<'_>, cost: &CostModel) -> Result<AssignmentSolution> {
    solve_max_rate_ctx(&SolveContext::new(*inst, *cost))
}

/// Streamline maximum frame rate over a shared [`SolveContext`].
pub fn solve_max_rate_ctx(ctx: &SolveContext<'_>) -> Result<AssignmentSolution> {
    let inst = ctx.instance();
    if inst.n_modules() > inst.network.node_count() {
        return Err(MappingError::Infeasible(format!(
            "{} modules need distinct nodes, network has {}",
            inst.n_modules(),
            inst.network.node_count()
        )));
    }
    if inst.src == inst.dst && inst.n_modules() >= 2 {
        return Err(MappingError::Infeasible(
            "source and destination coincide".into(),
        ));
    }
    let assignment = place(ctx, Mode::Rate)?;
    let objective_ms = routed_bottleneck_ms_ctx(ctx, &assignment, true)?;
    Ok(AssignmentSolution {
        assignment,
        objective_ms,
    })
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Delay,
    Rate,
}

fn place(ctx: &SolveContext<'_>, mode: Mode) -> Result<Vec<NodeId>> {
    let inst = ctx.instance();
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = pipe.len();
    let k = net.node_count();

    // --- step 1: neediness ranking over the unpinned stages 1..n-1 ---
    let avg_power = net.node_ids().map(|v| net.power(v)).sum::<f64>() / k as f64;
    let mut bw_sum = 0.0;
    let mut bw_count = 0usize;
    for (_, e) in net.graph().edges() {
        bw_sum += e.payload.bw_mbps;
        bw_count += 1;
    }
    let avg_bw = if bw_count > 0 {
        bw_sum / bw_count as f64
    } else {
        1.0
    };
    let est_transfer = |bytes: f64| -> f64 { elpc_netsim::units::serialization_ms(bytes, avg_bw) };

    let mut order: Vec<usize> = (1..n - 1).collect();
    let need = |j: usize| -> f64 {
        pipe.compute_work(j) / avg_power
            + est_transfer(pipe.input_bytes(j))
            + est_transfer(pipe.module(j).output_bytes)
    };
    order.sort_by(|&a, &b| need(b).partial_cmp(&need(a)).expect("needs are finite"));

    // --- step 2: greedy global placement ---
    let mut assignment: Vec<Option<NodeId>> = vec![None; n];
    assignment[0] = Some(inst.src);
    assignment[n - 1] = Some(inst.dst);
    let mut used = vec![false; k];
    if mode == Mode::Rate {
        used[inst.src.index()] = true;
        used[inst.dst.index()] = true;
    }

    for &j in &order {
        // routed distances from the placed predecessor / to the placed
        // successor, one metric-closure tree each (the network is
        // symmetric, so the successor's distances are computed from the
        // successor's side); trees are shared with every other solver on
        // this context
        let in_bytes = pipe.input_bytes(j);
        let out_bytes = pipe.module(j).output_bytes;
        let from_pred = assignment[j - 1].map(|u| ctx.routed_from(u, in_bytes));
        let to_succ = assignment[j + 1].map(|w| ctx.routed_from(w, out_bytes));
        let work = pipe.compute_work(j);
        let mut best: Option<(f64, NodeId)> = None;
        for v in net.node_ids() {
            if mode == Mode::Rate && used[v.index()] {
                continue;
            }
            let compute = work / net.power(v);
            let pred_t = from_pred.as_ref().map(|d| d.dist[v.index()]);
            let succ_t = to_succ.as_ref().map(|d| d.dist[v.index()]);
            if pred_t.is_some_and(f64::is_infinite) || succ_t.is_some_and(f64::is_infinite) {
                continue;
            }
            let score = match mode {
                Mode::Delay => compute + pred_t.unwrap_or(0.0) + succ_t.unwrap_or(0.0),
                Mode::Rate => compute
                    .max(pred_t.unwrap_or(0.0))
                    .max(succ_t.unwrap_or(0.0)),
            };
            if best.is_none_or(|(s, _)| score < s) {
                best = Some((score, v));
            }
        }
        let Some((_, v)) = best else {
            return Err(MappingError::Infeasible(format!(
                "Streamline found no available node for stage {j}"
            )));
        };
        assignment[j] = Some(v);
        if mode == Mode::Rate {
            used[v.index()] = true;
        }
    }

    Ok(assignment
        .into_iter()
        .map(|a| a.expect("all stages placed"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routed::{routed_bottleneck_ms, routed_delay_ms};
    use elpc_netsim::Network;
    use elpc_pipeline::{Module, Pipeline};

    fn cost() -> CostModel {
        CostModel::default()
    }

    /// Well-connected 5-node network with one standout compute node.
    fn net5() -> Network {
        let mut b = Network::builder();
        let powers = [10.0, 10.0, 1000.0, 10.0, 10.0];
        let ns: Vec<NodeId> = powers.iter().map(|&p| b.add_node(p).unwrap()).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_link(ns[i], ns[j], 100.0, 0.5).unwrap();
            }
        }
        b.build().unwrap()
    }

    fn pipe(n: usize) -> Pipeline {
        let stages: Vec<(f64, f64)> = (0..n - 2).map(|i| (1.0 + i as f64, 1e5)).collect();
        Pipeline::from_stages(1e6, &stages, 1.0).unwrap()
    }

    #[test]
    fn neediest_stage_gets_the_best_node() {
        let net = net5();
        // 4 modules; stage 2 (c=2) is needier than stage 1 (c=1)
        let p = pipe(4);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(4)).unwrap();
        let sol = solve_min_delay(&inst, &cost()).unwrap();
        // the standout node 2 hosts the neediest middle stage
        assert!(sol.assignment[1..3].contains(&NodeId(2)));
        assert_eq!(sol.assignment[0], NodeId(0));
        assert_eq!(sol.assignment[3], NodeId(4));
    }

    #[test]
    fn rate_mode_respects_no_reuse() {
        let net = net5();
        let p = pipe(5);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(4)).unwrap();
        let sol = solve_max_rate(&inst, &cost()).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for &n in &sol.assignment {
            assert!(seen.insert(n), "node {n} reused");
        }
        assert!(sol.objective_ms > 0.0);
        assert!(sol.frame_rate_fps().is_finite());
    }

    #[test]
    fn delay_mode_may_reuse_nodes() {
        // tiny network, long pipeline → reuse is forced
        let mut b = Network::builder();
        let s = b.add_node(100.0).unwrap();
        let d = b.add_node(100.0).unwrap();
        b.add_link(s, d, 100.0, 0.5).unwrap();
        let net = b.build().unwrap();
        let p = pipe(6);
        let inst = Instance::new(&net, &p, s, d).unwrap();
        let sol = solve_min_delay(&inst, &cost()).unwrap();
        assert_eq!(sol.assignment.len(), 6);
        // with 2 nodes and 6 modules, some node repeats
        let distinct: std::collections::BTreeSet<_> = sol.assignment.iter().collect();
        assert!(distinct.len() < 6);
    }

    #[test]
    fn rate_mode_rejects_oversized_pipelines() {
        let mut b = Network::builder();
        let s = b.add_node(100.0).unwrap();
        let d = b.add_node(100.0).unwrap();
        b.add_link(s, d, 100.0, 0.5).unwrap();
        let net = b.build().unwrap();
        let p = pipe(3);
        let inst = Instance::new(&net, &p, s, d).unwrap();
        assert!(matches!(
            solve_max_rate(&inst, &cost()),
            Err(MappingError::Infeasible(_))
        ));
    }

    #[test]
    fn objective_agrees_with_routed_reevaluation() {
        let net = net5();
        let p = pipe(5);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(4)).unwrap();
        let sol = solve_min_delay(&inst, &cost()).unwrap();
        let re = routed_delay_ms(&inst, &cost(), &sol.assignment).unwrap();
        assert!((sol.objective_ms - re).abs() < 1e-9);
        let sol = solve_max_rate(&inst, &cost()).unwrap();
        let re = routed_bottleneck_ms(&inst, &cost(), &sol.assignment, true).unwrap();
        assert!((sol.objective_ms - re).abs() < 1e-9);
    }

    #[test]
    fn deterministic_output() {
        let net = net5();
        let p = pipe(5);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(
            solve_min_delay(&inst, &cost()).unwrap(),
            solve_min_delay(&inst, &cost()).unwrap()
        );
    }

    #[test]
    fn two_module_pipeline_needs_no_placement() {
        let net = net5();
        let p = Pipeline::new(vec![Module::new(0.0, 1e5), Module::new(1.0, 0.0)]).unwrap();
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(4)).unwrap();
        let sol = solve_min_delay(&inst, &cost()).unwrap();
        assert_eq!(sol.assignment, vec![NodeId(0), NodeId(4)]);
    }
}
