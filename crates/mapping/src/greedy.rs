//! The Greedy baseline (§3.3).
//!
//! "A greedy algorithm iteratively obtains the greatest immediate gain
//! based on certain local optimality criteria at each step … calculates the
//! end-to-end delay or maximum frame rate for the mapping of a new module
//! onto the current node when node reuse is allowed or one of its neighbor
//! nodes and chooses the minimal one. This greedy algorithm makes a mapping
//! decision at each step only based on current information."
//!
//! Because greedy walks the network edge by edge, its output *is* a valid
//! adjacent-path [`Mapping`] (unlike Streamline's free placement). One
//! practical necessity the paper leaves implicit: module `n-1` is pinned to
//! the destination, so a candidate is only admissible if the destination
//! remains reachable within the remaining module budget (otherwise greedy
//! walks itself into a corner on almost every sparse instance). We use the
//! static BFS hop distance for that screen — a *necessary* condition only,
//! so the no-reuse variant can still dead-end and report infeasibility,
//! which is authentic greedy behaviour the experiments count.
//!
//! Complexity: `O(n · deg)` ≤ `O(m · n)` as stated in §3.3.

use crate::{CostModel, DelaySolution, Instance, Mapping, MappingError, RateSolution, Result};
use elpc_netgraph::algo::hop_distances_rev;
use elpc_netgraph::NodeId;

/// Greedy minimum end-to-end delay with node reuse.
pub fn solve_min_delay(inst: &Instance<'_>, cost: &CostModel) -> Result<DelaySolution> {
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = pipe.len();
    let hops_to_dst = hop_distances_rev(net.graph(), inst.dst);
    if !reachable_within(&hops_to_dst, inst.src, n - 1) {
        return Err(MappingError::Infeasible(format!(
            "destination {} is more than {} hops from source {}",
            inst.dst,
            n - 1,
            inst.src
        )));
    }

    let mut assignment = Vec::with_capacity(n);
    assignment.push(inst.src);
    let mut current = inst.src;
    let mut total = 0.0;
    for j in 1..n {
        let work = pipe.compute_work(j);
        let in_bytes = pipe.input_bytes(j);
        let budget = n - 1 - j; // moves left after placing module j
                                // stay candidate
        let mut best_cost = if reachable_within(&hops_to_dst, current, budget) {
            work / net.power(current)
        } else {
            f64::INFINITY
        };
        let mut best_node = current;
        // move candidates
        for nb in net.graph().neighbors(current) {
            if !reachable_within(&hops_to_dst, nb.node, budget) {
                continue;
            }
            let c = work / net.power(nb.node) + cost.edge_transfer_ms(net, nb.edge, in_bytes);
            if c < best_cost {
                best_cost = c;
                best_node = nb.node;
            }
        }
        if best_cost.is_infinite() {
            return Err(MappingError::Infeasible(format!(
                "greedy stranded at {current} before module {j}"
            )));
        }
        total += best_cost;
        current = best_node;
        assignment.push(current);
    }
    debug_assert_eq!(current, inst.dst, "the hop screen forces arrival at dst");

    let mapping = Mapping::from_assignment(&assignment)?;
    debug_assert!({
        let re = cost.delay_ms(inst, &mapping)?;
        (re - total).abs() <= 1e-6 * total.max(1.0)
    });
    Ok(DelaySolution {
        mapping,
        delay_ms: total,
    })
}

/// Greedy maximum frame rate without node reuse.
pub fn solve_max_rate(inst: &Instance<'_>, cost: &CostModel) -> Result<RateSolution> {
    let net = inst.network;
    let pipe = inst.pipeline;
    let n = pipe.len();
    let k = net.node_count();
    if n > k {
        return Err(MappingError::Infeasible(format!(
            "{n} modules need {n} distinct nodes, network has {k}"
        )));
    }
    if inst.src == inst.dst {
        return Err(MappingError::Infeasible(
            "source and destination coincide".into(),
        ));
    }
    let hops_to_dst = hop_distances_rev(net.graph(), inst.dst);

    let mut used = vec![false; k];
    used[inst.src.index()] = true;
    let mut assignment = Vec::with_capacity(n);
    assignment.push(inst.src);
    let mut current = inst.src;
    let mut bottleneck = 0.0_f64;
    for j in 1..n {
        let work = pipe.compute_work(j);
        let in_bytes = pipe.input_bytes(j);
        let budget = n - 1 - j;
        let mut best: Option<(f64, f64, NodeId, elpc_netgraph::EdgeId)> = None;
        for nb in net.graph().neighbors(current) {
            if used[nb.node.index()] {
                continue;
            }
            // dst may only host the last module
            if nb.node == inst.dst && j != n - 1 {
                continue;
            }
            if !reachable_within(&hops_to_dst, nb.node, budget) {
                continue;
            }
            let compute = work / net.power(nb.node);
            let transfer = cost.edge_transfer_ms(net, nb.edge, in_bytes);
            let stage_max = compute.max(transfer);
            let new_bottleneck = bottleneck.max(stage_max);
            // local criterion: smallest resulting bottleneck, tie-broken by
            // the smaller stage time (leaves more headroom later)
            let key = (new_bottleneck, stage_max);
            if best.is_none_or(|(b0, s0, _, _)| key < (b0, s0)) {
                best = Some((new_bottleneck, stage_max, nb.node, nb.edge));
            }
        }
        let Some((new_bottleneck, _, node, _)) = best else {
            return Err(MappingError::Infeasible(format!(
                "greedy stranded at {current} before module {j} (no unused \
                 neighbor keeps the destination reachable)"
            )));
        };
        bottleneck = new_bottleneck;
        used[node.index()] = true;
        current = node;
        assignment.push(node);
    }
    debug_assert_eq!(current, inst.dst);

    let mapping = Mapping::from_assignment(&assignment)?;
    debug_assert!(mapping.is_one_to_one());
    debug_assert!({
        let re = cost.bottleneck_ms(inst, &mapping)?;
        (re - bottleneck).abs() <= 1e-6 * bottleneck.max(1.0)
    });
    Ok(RateSolution {
        mapping,
        bottleneck_ms: bottleneck,
    })
}

#[inline]
fn reachable_within(hops_to_dst: &[Option<u32>], node: NodeId, budget: usize) -> bool {
    hops_to_dst[node.index()].is_some_and(|d| d as usize <= budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elpc_netsim::Network;
    use elpc_pipeline::{Module, Pipeline};

    fn cost() -> CostModel {
        CostModel::default()
    }

    fn net5() -> Network {
        let mut b = Network::builder();
        let powers = [100.0, 10.0, 1000.0, 10.0, 100.0];
        let ns: Vec<NodeId> = powers.iter().map(|&p| b.add_node(p).unwrap()).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_link(ns[i], ns[j], 100.0, 0.5).unwrap();
            }
        }
        b.build().unwrap()
    }

    fn pipe(n: usize) -> Pipeline {
        let stages: Vec<(f64, f64)> = (0..n - 2).map(|_| (2.0, 1e5)).collect();
        Pipeline::from_stages(1e6, &stages, 1.0).unwrap()
    }

    #[test]
    fn delay_solution_is_a_valid_mapping_reaching_dst() {
        let net = net5();
        let p = pipe(4);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(4)).unwrap();
        let sol = solve_min_delay(&inst, &cost()).unwrap();
        sol.mapping.validate(&inst, false).unwrap();
        assert_eq!(*sol.mapping.path().last().unwrap(), NodeId(4));
    }

    #[test]
    fn greedy_is_never_better_than_elpc_delay() {
        let net = net5();
        for n in [3, 4, 5, 6] {
            let p = pipe(n);
            let inst = Instance::new(&net, &p, NodeId(0), NodeId(4)).unwrap();
            let g = solve_min_delay(&inst, &cost()).unwrap();
            let e = crate::elpc_delay::solve(&inst, &cost()).unwrap();
            assert!(
                e.delay_ms <= g.delay_ms + 1e-9,
                "n={n}: ELPC {} vs greedy {}",
                e.delay_ms,
                g.delay_ms
            );
        }
    }

    #[test]
    fn greedy_is_never_better_than_exact_rate() {
        let net = net5();
        for n in [3, 4, 5] {
            let p = pipe(n);
            let inst = Instance::new(&net, &p, NodeId(0), NodeId(4)).unwrap();
            let g = solve_max_rate(&inst, &cost()).unwrap();
            let ex = crate::exact::max_rate(&inst, &cost(), crate::exact::ExactLimits::default())
                .unwrap();
            assert!(ex.bottleneck_ms <= g.bottleneck_ms + 1e-9);
        }
    }

    #[test]
    fn rate_solution_never_reuses_nodes() {
        let net = net5();
        let p = pipe(5);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(4)).unwrap();
        let sol = solve_max_rate(&inst, &cost()).unwrap();
        assert!(sol.mapping.is_one_to_one());
        sol.mapping.validate(&inst, true).unwrap();
    }

    #[test]
    fn myopia_can_cost_greedy_the_optimum() {
        // trap: a tempting fast neighbor leads into a slow corner.
        //   s ——— trap(fast cpu, then slow exit link) ——— d
        //   s ——— good(slow cpu, fast exit) ——— d
        let mut b = Network::builder();
        let s = b.add_node(10.0).unwrap();
        let trap = b.add_node(1000.0).unwrap();
        let good = b.add_node(500.0).unwrap();
        let d = b.add_node(10.0).unwrap();
        b.add_link(s, trap, 1000.0, 0.1).unwrap();
        b.add_link(trap, d, 1.0, 0.1).unwrap(); // slow exit
        b.add_link(s, good, 1000.0, 0.1).unwrap();
        b.add_link(good, d, 1000.0, 0.1).unwrap();
        let net = b.build().unwrap();
        let p = Pipeline::new(vec![
            Module::new(0.0, 1e6),
            Module::new(1.0, 2e6), // big output makes the slow exit fatal
            Module::new(0.0001, 0.0),
        ])
        .unwrap();
        let inst = Instance::new(&net, &p, s, d).unwrap();
        let g = solve_min_delay(&inst, &cost()).unwrap();
        let e = crate::elpc_delay::solve(&inst, &cost()).unwrap();
        // greedy grabs the locally cheaper trap node (1000 ms compute vs
        // 2000 ms on `good`), then pays 16000 ms shipping 2 MB over the
        // 1 Mbps exit; ELPC routes via `good` for ~2 s total
        assert!(
            g.delay_ms > e.delay_ms * 2.0,
            "greedy {} vs elpc {}",
            g.delay_ms,
            e.delay_ms
        );
        assert_eq!(g.mapping.assignment()[1], trap);
        assert_eq!(e.mapping.assignment()[1], good);
    }

    #[test]
    fn infeasible_cases_are_reported() {
        // line 0-1-2, 2-module pipeline, endpoints 2 hops apart
        let mut b = Network::builder();
        let n0 = b.add_node(10.0).unwrap();
        let n1 = b.add_node(10.0).unwrap();
        let n2 = b.add_node(10.0).unwrap();
        b.add_link(n0, n1, 10.0, 0.1).unwrap();
        b.add_link(n1, n2, 10.0, 0.1).unwrap();
        let net = b.build().unwrap();
        let p = Pipeline::new(vec![Module::new(0.0, 1e4), Module::new(1.0, 0.0)]).unwrap();
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(2)).unwrap();
        assert!(matches!(
            solve_min_delay(&inst, &cost()),
            Err(MappingError::Infeasible(_))
        ));
        // rate: more modules than nodes
        let p = pipe(7);
        let inst = Instance::new(&net, &p, NodeId(0), NodeId(2)).unwrap();
        assert!(matches!(
            solve_max_rate(&inst, &cost()),
            Err(MappingError::Infeasible(_))
        ));
    }

    #[test]
    fn reuse_lets_greedy_idle_on_good_nodes() {
        // when staying is free (no transfer), greedy groups modules on the
        // current node if moving would not pay off
        let mut b = Network::builder();
        let s = b.add_node(1000.0).unwrap();
        let d = b.add_node(1.0).unwrap();
        b.add_link(s, d, 1.0, 10.0).unwrap();
        let net = b.build().unwrap();
        let p = Pipeline::new(vec![
            Module::new(0.0, 1e6),
            Module::new(2.0, 1e4),
            Module::new(2.0, 1e4),
            Module::new(0.1, 0.0),
        ])
        .unwrap();
        let inst = Instance::new(&net, &p, s, d).unwrap();
        let sol = solve_min_delay(&inst, &cost()).unwrap();
        let a = sol.mapping.assignment();
        // modules 1 and 2 stay on the strong source; only the pinned sink moves
        assert_eq!(a, vec![s, s, s, d]);
    }
}
