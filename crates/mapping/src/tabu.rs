//! Tabu-search mapping solver over free stage→node assignments.
//!
//! The dispersed-computing throughput literature (Zhao et al., *Design and
//! Experimental Evaluation of Algorithms for Optimizing the Throughput of
//! Dispersed Computing*, arXiv:2112.13875) uses tabu search as its
//! strongest classical baseline for the unstructured assignment problem the
//! metaheuristic family already explores. This module supplies that
//! baseline behind the [`crate::Solver`] registry (`tabu_delay` /
//! `tabu_rate`), reusing the reassign-one-stage / swap-two-stages
//! neighborhood machinery of [`crate::metaheuristic`] under a different
//! acceptance rule:
//!
//! * each iteration samples `neighborhood` candidate moves from the current
//!   assignment and takes the best **admissible** one — admissible meaning
//!   not tabu, *or* tabu but better than anything seen so far (the
//!   **aspiration** criterion);
//! * applying a move marks the *reverse* placements tabu: every stage the
//!   move touched may not return to its previous host for `tenure`
//!   iterations. Unlike annealing, a non-improving best-admissible move is
//!   still taken, which is what walks the search out of local minima.
//!
//! ## Search space, evaluation, and warm start
//!
//! Identical to the metaheuristics: endpoints pinned, MinDelay may reuse
//! hosts, MaxRate requires pairwise-distinct hosts, and every candidate is
//! scored under routed transport. Since ISSUE 5 the neighborhood scan is
//! pure array arithmetic over the context's dense
//! [`crate::eval::EvalKernel`]: each sampled move is scored by only its
//! changed stage terms in O(1) through [`crate::eval::DeltaEval`] (no
//! candidate vector is materialized, no locks are taken, nothing
//! allocates), the MaxRate scan abandons a candidate as soon as a
//! delta-updated stage term already reaches the best admissible bottleneck
//! of the round, and the applied move re-derives the exact objective so
//! every recorded value reconciles bit-for-bit with the routed evaluators.
//! The initial assignment is the best of the deterministic baseline, the
//! greedy solver's solution re-evaluated under routed semantics (a
//! classical warm start — and the reason `tabu_*` can never end worse than
//! greedy: routed evaluation never exceeds greedy's own strict objective),
//! and a handful of random draws.
//!
//! ## Determinism
//!
//! All randomness flows from one seeded [`rand_chacha::ChaCha8Rng`]; the
//! same [`TabuConfig`] on the same instance reproduces the identical search
//! at every [`crate::SolveContext`] thread count (closure warm-up changes
//! *when* trees are built, never what a candidate scores).

use crate::eval::{BoundedEval, MoveSpec};
use crate::metaheuristic::{track_best, Search};
use crate::{greedy, AssignmentSolution, MappingError, Objective, Result, SolveContext};
use elpc_netgraph::NodeId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Configuration of the tabu-search solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TabuConfig {
    /// RNG seed; equal seeds reproduce the search exactly.
    pub seed: u64,
    /// Search iterations (one applied move each).
    pub iterations: usize,
    /// Candidate moves sampled per iteration.
    pub neighborhood: usize,
    /// Iterations a reversed placement stays tabu. `0` disables the list
    /// (the search degenerates to a steepest-descent walk with restarts
    /// from nowhere — legal, rarely useful).
    pub tenure: usize,
}

impl Default for TabuConfig {
    /// The default budget matches the annealer's: `iterations ×
    /// neighborhood` = 5000 candidate evaluations, the same count as
    /// [`crate::AnnealConfig::default`]'s `iterations × restarts`, so the
    /// registry entries compare at equal move budgets.
    fn default() -> Self {
        TabuConfig {
            seed: crate::metaheuristic::DEFAULT_SEED,
            iterations: 250,
            neighborhood: 20,
            tenure: 8,
        }
    }
}

impl TabuConfig {
    fn validate(&self) -> Result<()> {
        if self.iterations == 0 || self.neighborhood == 0 {
            return Err(MappingError::BadConfig(
                "tabu search needs at least one iteration and one candidate per iteration".into(),
            ));
        }
        Ok(())
    }
}

/// The best feasible starting point: the deterministic baseline, the greedy
/// solver's assignment re-scored under routed semantics, and random draws.
/// Shared with [`crate::lns`], which starts from the same candidates.
pub(crate) fn warm_start(
    ctx: &SolveContext<'_>,
    objective: Objective,
    search: &Search,
    rng: &mut ChaCha8Rng,
) -> Option<(Vec<NodeId>, f64)> {
    let mut best = search.initial(rng, 50, true);
    let greedy_assignment = match objective {
        Objective::MinDelay => greedy::solve_min_delay(ctx.instance(), ctx.cost())
            .ok()
            .map(|s| s.mapping.assignment()),
        Objective::MaxRate => greedy::solve_max_rate(ctx.instance(), ctx.cost())
            .ok()
            .map(|s| s.mapping.assignment()),
    };
    if let Some(a) = greedy_assignment {
        if let Some(cost) = search.evaluate(&a) {
            track_best(&mut best, &a, cost);
        }
    }
    best
}

/// Keeps `slot` pointing at the lowest-cost move seen so far (strict `<`,
/// so the earliest sampled move wins ties — the same first-wins rule the
/// assignment-cloning scan used).
fn keep_best(slot: &mut Option<(MoveSpec, f64)>, mv: MoveSpec, cost: f64) {
    if slot.as_ref().is_none_or(|(_, b)| cost < *b) {
        *slot = Some((mv, cost));
    }
}

/// Tabu search over stage→node assignments.
///
/// Walks from a warm-started assignment, each iteration applying the best
/// admissible of `neighborhood` sampled reassign/swap moves; a move is
/// inadmissible while any stage it touches would return to a host it left
/// within the last `tenure` iterations, unless the move beats the best
/// objective ever seen (aspiration). The scan is pure array arithmetic:
/// each sampled move is scored by its changed stage terms through the
/// context's dense evaluation kernel (O(1) per candidate, allocation-free),
/// and under MaxRate a candidate is abandoned as soon as a delta-updated
/// stage term already rules it out of this round's selection. Deterministic
/// for a fixed `(instance, cost model, config)` at any thread count, and —
/// because the greedy solution is a starting candidate — never worse than
/// the greedy baseline of the same objective under routed evaluation.
pub fn solve_tabu(
    ctx: &SolveContext<'_>,
    objective: Objective,
    config: &TabuConfig,
) -> Result<AssignmentSolution> {
    config.validate()?;
    let search = Search::new(ctx, objective)?;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let Some((current, mut cur_cost)) = warm_start(ctx, objective, &search, &mut rng) else {
        return search.finish(None);
    };
    let mut best: Option<(Vec<NodeId>, f64)> = None;
    track_best(&mut best, &current, cur_cost);
    let mut state = search.delta_state(&current);

    // (stage, host) → first iteration the placement is allowed again
    let mut tabu: HashMap<(usize, NodeId), usize> = HashMap::new();

    for iter in 0..config.iterations {
        // best admissible move this round, and the all-tabu fallback when
        // every sampled move is tabu and none aspirates
        let mut chosen: Option<(MoveSpec, f64)> = None;
        let mut chosen_tabu: Option<(MoveSpec, f64)> = None;
        let best_ever = best.as_ref().map(|(_, b)| *b).expect("tracked above");
        for _ in 0..config.neighborhood {
            let Some(mv) = search.propose_spec(state.used_hosts(), &mut rng) else {
                // a 2-module instance has exactly one assignment
                return search.finish(best);
            };
            // a move is tabu when any changed stage returns to a host on
            // its tabu list (at most two changed placements per move)
            let active = |j: usize, h: NodeId| tabu.get(&(j, h)).is_some_and(|&until| iter < until);
            let cur = state.assignment();
            let is_tabu = match mv {
                MoveSpec::Reassign { stage, to } => to != cur[stage] && active(stage, to),
                MoveSpec::Swap { a, b } => {
                    cur[a] != cur[b] && (active(a, cur[b]) || active(b, cur[a]))
                }
            };
            // a candidate can only matter below these costs, so the rate
            // scan may abandon it the moment a delta term reaches them
            let slot_cost = |s: &Option<(MoveSpec, f64)>| s.map_or(f64::INFINITY, |(_, c)| c);
            let prune_at = if is_tabu {
                best_ever
                    .min(slot_cost(&chosen))
                    .max(slot_cost(&chosen_tabu))
            } else {
                slot_cost(&chosen)
            };
            let BoundedEval::Feasible(cand_cost) = state.eval_move_bounded(mv, prune_at) else {
                continue; // infeasible, or provably not this round's pick
            };
            if !is_tabu || cand_cost < best_ever {
                keep_best(&mut chosen, mv, cand_cost);
            } else {
                keep_best(&mut chosen_tabu, mv, cand_cost);
            }
        }
        let Some((mv, _)) = chosen.or(chosen_tabu) else {
            continue; // no sampled move was feasible this round
        };
        // reverse placements become tabu: each changed stage may not return
        // to the host it just left for `tenure` iterations
        let cur = state.assignment();
        match mv {
            MoveSpec::Reassign { stage, to } if to != cur[stage] => {
                tabu.insert((stage, cur[stage]), iter + 1 + config.tenure);
            }
            MoveSpec::Swap { a, b } if cur[a] != cur[b] => {
                tabu.insert((a, cur[a]), iter + 1 + config.tenure);
                tabu.insert((b, cur[b]), iter + 1 + config.tenure);
            }
            _ => {} // a no-op move changes no placement
        }
        cur_cost = state.apply(mv).expect("chosen move is feasible");
        track_best(&mut best, state.assignment(), cur_cost);
    }
    search.finish(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{k5, pipe4};
    use crate::{elpc_delay, routed, CostModel, Instance};
    use elpc_pipeline::Pipeline;

    fn cost() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn tabu_is_seed_deterministic() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let a = solve_tabu(
                &SolveContext::new(inst, cost()),
                objective,
                &TabuConfig::default(),
            )
            .unwrap();
            let b = solve_tabu(
                &SolveContext::new(inst, cost()),
                objective,
                &TabuConfig::default(),
            )
            .unwrap();
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.objective_ms.to_bits(), b.objective_ms.to_bits());
        }
    }

    #[test]
    fn tabu_delay_matches_the_routed_optimum_on_a_small_instance() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let exact = elpc_delay::solve_routed_ctx(&ctx).unwrap();
        let ts = solve_tabu(&ctx, Objective::MinDelay, &TabuConfig::default()).unwrap();
        assert!(ts.objective_ms >= exact.objective_ms - 1e-9);
        assert!(
            (ts.objective_ms - exact.objective_ms).abs() <= 1e-6 * exact.objective_ms,
            "tabu missed the optimum on a trivial instance: {} vs {}",
            ts.objective_ms,
            exact.objective_ms
        );
    }

    #[test]
    fn tabu_never_ends_worse_than_greedy() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let ts = solve_tabu(&ctx, Objective::MinDelay, &TabuConfig::default()).unwrap();
        let g = greedy::solve_min_delay(ctx.instance(), ctx.cost()).unwrap();
        assert!(ts.objective_ms <= g.delay_ms + 1e-9);
        let ts = solve_tabu(&ctx, Objective::MaxRate, &TabuConfig::default()).unwrap();
        let g = greedy::solve_max_rate(ctx.instance(), ctx.cost()).unwrap();
        assert!(ts.objective_ms <= g.bottleneck_ms + 1e-9);
    }

    #[test]
    fn rate_solutions_respect_the_distinctness_constraint() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let sol = solve_tabu(&ctx, Objective::MaxRate, &TabuConfig::default()).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for &h in &sol.assignment {
            assert!(seen.insert(h), "host {h} reused in a MaxRate mapping");
        }
        assert_eq!(sol.assignment[0], NodeId(0));
        assert_eq!(*sol.assignment.last().unwrap(), NodeId(4));
        let re = routed::routed_bottleneck_ms_ctx(&ctx, &sol.assignment, true).unwrap();
        assert_eq!(re.to_bits(), sol.objective_ms.to_bits());
    }

    #[test]
    fn infeasible_instances_are_reported() {
        let net = k5();
        // 6 modules on 5 nodes: MaxRate is structurally infeasible
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4); 4], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        assert!(matches!(
            solve_tabu(&ctx, Objective::MaxRate, &TabuConfig::default()),
            Err(MappingError::Infeasible(_))
        ));
    }

    #[test]
    fn bad_configs_are_rejected() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        for bad in [
            TabuConfig {
                iterations: 0,
                ..Default::default()
            },
            TabuConfig {
                neighborhood: 0,
                ..Default::default()
            },
        ] {
            assert!(matches!(
                solve_tabu(&ctx, Objective::MinDelay, &bad),
                Err(MappingError::BadConfig(_))
            ));
        }
        // a zero tenure is legal (plain steepest-admissible walk)
        assert!(solve_tabu(
            &ctx,
            Objective::MinDelay,
            &TabuConfig {
                tenure: 0,
                ..Default::default()
            }
        )
        .is_ok());
    }

    #[test]
    fn two_module_pipelines_have_one_assignment() {
        let net = k5();
        let pipe = Pipeline::from_stages(1e5, &[], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let sol = solve_tabu(&ctx, Objective::MinDelay, &TabuConfig::default()).unwrap();
        assert_eq!(sol.assignment, vec![NodeId(0), NodeId(4)]);
    }
}
