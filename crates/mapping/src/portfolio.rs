//! The portfolio meta-solver: a slate of registry members — optionally
//! fanned metaheuristic variants — racing on one shared context.
//!
//! The registry makes every algorithm callable by name against a shared
//! [`SolveContext`]; the portfolio turns that into a self-racing ensemble.
//! [`solve_portfolio`] runs a configurable slate of registered solvers —
//! concurrently on crossbeam scoped threads when the config asks for more
//! than one worker — against **one** shared metric closure, then returns
//! the best result with per-member timing/quality attribution.
//!
//! ## Fanned members (portfolio v2)
//!
//! Besides plain registry names, a slate can carry [`FannedMember`]s: one
//! seeded metaheuristic (`lns_*`, `tabu_*`, `anneal_*`, `genetic_*`)
//! expanded across `seeds × budgets` — every combination races as its own
//! member with the family's default config reshaped to that
//! candidate-evaluation budget. Fanned members always run *after* the
//! named members in tie-break order (declaration order, seeds outer,
//! budgets inner), labeled `base[seed=S,evals=B]` in the attribution.
//!
//! ## Early cancellation
//!
//! With [`PortfolioConfig::early_cancel`], the portfolio first computes
//! the **routed lower bound** of the objective — `elpc_delay_routed`
//! (provably optimal for the routed delay space) or
//! [`crate::exact::max_rate_routed`] under its enumeration budget guard
//! (no bound when the guard refuses) — and stops spending budget once any
//! member matches it: a worker that picks up member `i` skips the solve
//! when some member `j < i` has already matched the bound. Skipping never
//! changes the answer, because no member can beat a lower bound.
//!
//! ## Determinism
//!
//! The winner is chosen **by value, never by finish order**: every member
//! is deterministic (the seeded metaheuristics included) and a member's
//! result cannot depend on what the closure already contains (caching
//! changes *when* trees are built, never what a query returns), so the
//! member outcomes are identical at any thread count. Ties on the
//! objective are broken by slate order — the earliest member with the
//! minimal objective wins — so the portfolio's solution is bit-identical
//! whether the slate ran serially, on two threads, or on all CPUs.
//!
//! Early cancellation preserves this: the reported *cancel point* is the
//! lowest member index whose (deterministic) value matches the bound, and
//! every later member reports `cancelled` regardless of whether a worker
//! happened to finish it first. A member can only be skipped at execution
//! time when a strictly earlier member already matched, so every member at
//! or before the cancel point always runs — the report vector, winner,
//! and solution are functions of member values alone, never of timing.
//!
//! The registry entries (`portfolio_delay` / `portfolio_rate`) run the
//! default slates below with the context's
//! [`SolveContext::warm_threads`] as the worker count: a plain
//! [`SolveContext::new`] context races the slate serially, a
//! `with_threads(inst, cost, 0)` context races it on all CPUs. Because
//! `elpc_delay_routed` — provably optimal for the routed delay space —
//! leads the delay slate, `portfolio_delay` inherits its optimality while
//! attributing how close every heuristic came.
//!
//! N members hammering one sharded closure is also the strongest
//! concurrency stress in the workspace; `tests/context_concurrency.rs`
//! pins that the `hits + misses == queries` statistics invariant and the
//! closure contents survive it bit-for-bit.

use crate::context::effective_threads;
use crate::{
    elpc_delay, exact, lns, metaheuristic, solver, tabu, MappingError, Objective, Result, Solution,
    SolveContext, Solver,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The default delay slate, in tie-break priority order. Leads with the
/// routed-optimal DP, then the polynomial baselines, then the
/// metaheuristics (the budgeted `exact_*` solvers are exponential and stay
/// out of the default race).
pub const DELAY_SLATE: [&str; 6] = [
    "elpc_delay_routed",
    "streamline_delay",
    "greedy_delay",
    "tabu_delay",
    "anneal_delay",
    "genetic_delay",
];

/// The default rate slate, in tie-break priority order.
pub const RATE_SLATE: [&str; 6] = [
    "elpc_rate_routed",
    "streamline_rate",
    "greedy_rate",
    "tabu_rate",
    "anneal_rate",
    "genetic_rate",
];

/// One metaheuristic fanned across seeds × budget tiers: every `(seed,
/// budget)` combination races as its own slate member with the family's
/// default config reshaped to that candidate-evaluation budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FannedMember {
    /// Registry name of the metaheuristic to fan (`lns_*`, `tabu_*`,
    /// `anneal_*`, or `genetic_*`; must optimize the portfolio's
    /// objective).
    pub base: &'static str,
    /// RNG seeds, one member per seed (outer expansion order).
    pub seeds: Vec<u64>,
    /// Candidate-evaluation budgets, one member per tier per seed (inner
    /// expansion order). Mapped onto each family's config shape: LNS uses
    /// it directly; tabu divides by its neighborhood size; annealing by
    /// its restart count; the GA by its population size.
    pub budgets: Vec<usize>,
}

impl FannedMember {
    /// Fans `base` across `seeds` at the family's default budget tier.
    pub fn seeds(base: &'static str, seeds: Vec<u64>) -> Self {
        FannedMember {
            base,
            seeds,
            budgets: vec![5000],
        }
    }
}

/// Configuration of the portfolio meta-solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Registry names to race, in tie-break priority order (the earliest
    /// member with the minimal objective wins). Members must all optimize
    /// the portfolio's objective and may not themselves be portfolios.
    pub members: Vec<&'static str>,
    /// Fanned metaheuristic members, expanded `seeds × budgets` after the
    /// named members in declaration order.
    pub fanned: Vec<FannedMember>,
    /// Stop spending budget once any member matches the routed lower
    /// bound of the objective (see the module docs; the reported winner
    /// and member values stay bit-identical at any worker count).
    pub early_cancel: bool,
    /// Worker threads: `0` = all CPUs, `1` = serial (the default).
    pub threads: usize,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            members: Vec::new(),
            fanned: Vec::new(),
            early_cancel: false,
            threads: 1,
        }
    }
}

impl PortfolioConfig {
    /// The default slate for `objective`, serial.
    pub fn for_objective(objective: Objective) -> Self {
        let members = match objective {
            Objective::MinDelay => DELAY_SLATE.to_vec(),
            Objective::MaxRate => RATE_SLATE.to_vec(),
        };
        PortfolioConfig {
            members,
            ..Default::default()
        }
    }

    /// Sets the worker-thread count (`0` = all CPUs).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Appends a fanned metaheuristic member.
    pub fn fan(mut self, member: FannedMember) -> Self {
        self.fanned.push(member);
        self
    }

    /// Enables early cancellation at the routed lower bound.
    pub fn early_cancel(mut self) -> Self {
        self.early_cancel = true;
        self
    }

    fn resolve(&self, objective: Objective) -> Result<Vec<SlateTask>> {
        if self.members.is_empty() && self.fanned.is_empty() {
            return Err(MappingError::BadConfig(
                "portfolio slate must name at least one solver".into(),
            ));
        }
        let mut tasks: Vec<SlateTask> = self
            .members
            .iter()
            .map(|&name| {
                if name.starts_with("portfolio") {
                    return Err(MappingError::BadConfig(format!(
                        "portfolio slates cannot nest portfolios (`{name}`)"
                    )));
                }
                let s = solver(name).ok_or_else(|| {
                    MappingError::BadConfig(format!("no solver named `{name}` in the registry"))
                })?;
                if s.objective() != objective {
                    return Err(MappingError::BadConfig(format!(
                        "slate member `{name}` optimizes {:?}, portfolio wants {objective:?}",
                        s.objective()
                    )));
                }
                Ok(SlateTask::Registered(s))
            })
            .collect::<Result<_>>()?;
        for f in &self.fanned {
            if !FANNABLE.iter().any(|p| f.base.starts_with(p)) {
                return Err(MappingError::BadConfig(format!(
                    "`{}` is not a fannable metaheuristic (expected an lns/tabu/anneal/genetic entry)",
                    f.base
                )));
            }
            let s = solver(f.base).ok_or_else(|| {
                MappingError::BadConfig(format!("no solver named `{}` in the registry", f.base))
            })?;
            if s.objective() != objective {
                return Err(MappingError::BadConfig(format!(
                    "fanned member `{}` optimizes {:?}, portfolio wants {objective:?}",
                    f.base,
                    s.objective()
                )));
            }
            if f.seeds.is_empty() || f.budgets.is_empty() {
                return Err(MappingError::BadConfig(format!(
                    "fanned member `{}` needs at least one seed and one budget tier",
                    f.base
                )));
            }
            if f.budgets.contains(&0) {
                return Err(MappingError::BadConfig(format!(
                    "fanned member `{}` has a zero budget tier",
                    f.base
                )));
            }
            for &seed in &f.seeds {
                for &budget in &f.budgets {
                    tasks.push(SlateTask::Fanned {
                        label: format!("{}[seed={seed},evals={budget}]", f.base),
                        base: f.base,
                        seed,
                        budget,
                    });
                }
            }
        }
        Ok(tasks)
    }
}

/// Metaheuristic families a [`FannedMember`] may fan (name prefixes).
const FANNABLE: [&str; 4] = ["lns", "tabu", "anneal", "genetic"];

/// One expanded slate entry: a registered solver, or one `(seed, budget)`
/// variant of a fanned metaheuristic.
enum SlateTask {
    Registered(&'static dyn Solver),
    Fanned {
        label: String,
        base: &'static str,
        seed: u64,
        budget: usize,
    },
}

impl SlateTask {
    fn label(&self) -> &str {
        match self {
            SlateTask::Registered(s) => s.name(),
            SlateTask::Fanned { label, .. } => label,
        }
    }

    fn uses_eval_kernel(&self) -> bool {
        match self {
            SlateTask::Registered(s) => s.uses_eval_kernel(),
            SlateTask::Fanned { .. } => true,
        }
    }

    /// Runs the task. Fanned variants reshape the family's default config
    /// to the budget tier: LNS spends the budget directly; tabu keeps its
    /// neighborhood width and scales iterations; annealing keeps its
    /// restarts and scales iterations; the GA keeps its population and
    /// scales generations.
    fn solve(&self, ctx: &SolveContext<'_>) -> Result<Solution> {
        let from_assignment = |a: crate::AssignmentSolution| Solution {
            assignment: a.assignment,
            objective_ms: a.objective_ms,
            mapping: None,
        };
        match *self {
            SlateTask::Registered(s) => s.solve(ctx),
            SlateTask::Fanned {
                base, seed, budget, ..
            } => {
                let objective = solver(base).expect("validated by resolve").objective();
                if base.starts_with("lns") {
                    lns::solve_lns(
                        ctx,
                        objective,
                        &lns::LnsConfig {
                            seed,
                            budget,
                            ..Default::default()
                        },
                    )
                    .map(from_assignment)
                } else if base.starts_with("tabu") {
                    let d = tabu::TabuConfig::default();
                    tabu::solve_tabu(
                        ctx,
                        objective,
                        &tabu::TabuConfig {
                            seed,
                            iterations: (budget / d.neighborhood).max(1),
                            ..d
                        },
                    )
                    .map(from_assignment)
                } else if base.starts_with("anneal") {
                    let d = metaheuristic::AnnealConfig::default();
                    metaheuristic::solve_anneal(
                        ctx,
                        objective,
                        &metaheuristic::AnnealConfig {
                            seed,
                            iterations: (budget / d.restarts).max(1),
                            ..d
                        },
                    )
                    .map(from_assignment)
                } else {
                    let d = metaheuristic::GeneticConfig::default();
                    metaheuristic::solve_genetic(
                        ctx,
                        objective,
                        &metaheuristic::GeneticConfig {
                            seed,
                            generations: (budget / d.population).max(1),
                            ..d
                        },
                    )
                    .map(from_assignment)
                }
            }
        }
    }
}

/// The routed lower bound of `objective` on `ctx`: the routed-optimal
/// delay DP, or the routed-exact rate enumeration under its budget guard.
/// `None` when the bound itself is unavailable (infeasible instance or the
/// enumeration guard refused) — then nothing cancels.
fn routed_lower_bound(ctx: &SolveContext<'_>, objective: Objective) -> Option<f64> {
    match objective {
        Objective::MinDelay => elpc_delay::solve_routed_ctx(ctx)
            .ok()
            .map(|s| s.objective_ms),
        Objective::MaxRate => exact::max_rate_routed(ctx, exact::ExactLimits::default())
            .ok()
            .map(|s| s.objective_ms),
    }
}

/// One slate member's outcome: what it scored, how long it took, whether it
/// won. The attribution record `workloads::compare` surfaces per case.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberReport {
    /// The member's registry name, or a fanned variant's
    /// `base[seed=S,evals=B]` label.
    pub name: String,
    /// Objective in ms when the member solved.
    pub objective_ms: Option<f64>,
    /// The member's error when it failed.
    pub error: Option<MappingError>,
    /// Wall time the member's solve took (ms). Informational only — the
    /// winner is chosen by objective value, never by speed. Zero for
    /// cancelled members.
    pub elapsed_ms: f64,
    /// True for the member whose solution the portfolio returned.
    pub won: bool,
    /// True when early cancellation cut this member: an earlier member
    /// already matched the routed lower bound, so this one's result is
    /// not reported even if a worker happened to compute it.
    pub cancelled: bool,
}

/// A portfolio run: the winning solution plus per-member attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioSolution {
    /// The winning member's solution.
    pub solution: Solution,
    /// The winning member's registry name (or fanned-variant label).
    pub winner: String,
    /// Every member's outcome, in slate order.
    pub members: Vec<MemberReport>,
}

/// Races `config.members` (plus fanned variants) on `ctx` and returns the
/// best result.
///
/// Members run concurrently on crossbeam scoped threads when
/// `config.threads != 1` (`0` = all CPUs), all sharing `ctx`'s metric
/// closure, so the all-pairs transfer trees are built once for the whole
/// slate. The winner is the member with the lowest `objective_ms`, ties
/// broken by slate order; the result is therefore identical at every
/// thread count (including under [`PortfolioConfig::early_cancel`] — see
/// the module docs). When no member solves, the slate's errors collapse to
/// one: [`MappingError::Infeasible`] when every member reported
/// infeasibility, otherwise the first non-infeasibility error in slate
/// order.
///
/// # Examples
///
/// ```
/// use elpc_mapping::{portfolio, CostModel, Instance, Objective, SolveContext};
/// # let mut b = elpc_netsim::Network::builder();
/// # let s = b.add_node(100.0).unwrap();
/// # let m = b.add_node(1000.0).unwrap();
/// # let d = b.add_node(100.0).unwrap();
/// # b.add_link(s, m, 100.0, 0.5).unwrap();
/// # b.add_link(m, d, 100.0, 0.5).unwrap();
/// # let network = b.build().unwrap();
/// # let pipeline = elpc_pipeline::Pipeline::from_stages(1e6, &[(2.0, 1e5)], 1.0).unwrap();
/// let inst = Instance::new(&network, &pipeline, s, d).unwrap();
/// let ctx = SolveContext::new(inst, CostModel::default());
/// let config = portfolio::PortfolioConfig::for_objective(Objective::MinDelay);
/// let race = portfolio::solve_portfolio(&ctx, Objective::MinDelay, &config).unwrap();
/// // the routed-optimal DP leads the slate, so it wins every tie
/// assert_eq!(race.winner, "elpc_delay_routed");
/// assert_eq!(race.members.len(), portfolio::DELAY_SLATE.len());
/// assert!(race.members.iter().all(|m| m.objective_ms.unwrap() >= race.solution.objective_ms));
/// ```
pub fn solve_portfolio(
    ctx: &SolveContext<'_>,
    objective: Objective,
    config: &PortfolioConfig,
) -> Result<PortfolioSolution> {
    let tasks = config.resolve(objective)?;
    // when kernel-backed local-search members are racing, snapshot the
    // dense evaluation kernel once up front (parallelized by the context's
    // warm threads) instead of letting the first such member build it
    // mid-race — results are identical either way, only the build is
    // hoisted out of that member's attribution timing
    if tasks.iter().any(|t| t.uses_eval_kernel()) {
        ctx.eval_kernel();
    }
    let bound = if config.early_cancel {
        routed_lower_bound(ctx, objective)
    } else {
        None
    };
    let outcomes = race(ctx, &tasks, config.threads, bound);

    // the cancel point: the lowest member index whose value matched the
    // bound. Deterministic because a member can only be *skipped* when a
    // strictly earlier member matched, so every member at or before the
    // first match always ran (see the module docs).
    let first_match = bound.and_then(|b| {
        outcomes.iter().enumerate().find_map(|(i, o)| match o {
            Some((Ok(sol), _)) if sol.objective_ms <= b => Some(i),
            _ => None,
        })
    });
    let cancelled = |i: usize| first_match.is_some_and(|fm| i > fm);

    // winner by value, ties by slate order — finish order never enters
    let mut winner: Option<(usize, f64)> = None;
    for (i, outcome) in outcomes.iter().enumerate() {
        if cancelled(i) {
            continue;
        }
        if let Some((Ok(sol), _)) = outcome {
            if winner.is_none_or(|(_, best)| sol.objective_ms < best) {
                winner = Some((i, sol.objective_ms));
            }
        }
    }

    let Some((win_idx, _)) = winner else {
        // no winner means no Ok outcome at all: nothing matched the bound
        // (so nothing was cancelled or skipped) and every member errored
        let mut first_error: Option<MappingError> = None;
        for outcome in outcomes {
            match outcome.expect("without a bound match, every member runs") {
                (Err(e @ MappingError::Infeasible(_)), _) => {
                    first_error.get_or_insert(e);
                }
                (Err(e), _) => return Err(e),
                (Ok(_), _) => unreachable!("no winner means no Ok outcome"),
            }
        }
        return Err(first_error.expect("slate is non-empty"));
    };

    let members: Vec<MemberReport> = tasks
        .iter()
        .zip(&outcomes)
        .enumerate()
        .map(|(i, (t, outcome))| {
            if cancelled(i) {
                return MemberReport {
                    name: t.label().to_string(),
                    objective_ms: None,
                    error: None,
                    elapsed_ms: 0.0,
                    won: false,
                    cancelled: true,
                };
            }
            let (result, elapsed_ms) = outcome
                .as_ref()
                .expect("members at or before the cancel point always run");
            MemberReport {
                name: t.label().to_string(),
                objective_ms: result.as_ref().ok().map(|sol| sol.objective_ms),
                error: result.as_ref().err().cloned(),
                elapsed_ms: *elapsed_ms,
                won: i == win_idx,
                cancelled: false,
            }
        })
        .collect();
    let winner_name = tasks[win_idx].label().to_string();
    let (result, _) = outcomes
        .into_iter()
        .nth(win_idx)
        .expect("winner index")
        .expect("the winner ran");
    Ok(PortfolioSolution {
        solution: result.expect("winner solved"),
        winner: winner_name,
        members,
    })
}

/// One member's raw outcome: the solve result and its wall time in ms.
/// `None` when early cancellation skipped the member before it ran.
type TimedOutcome = (Result<Solution>, f64);

/// Runs every slate task once, returning `Some((result, elapsed_ms))` in
/// slate order — serially when `threads <= 1`, otherwise work-pulled onto
/// scoped worker threads all sharing `ctx`. With a `bound`, a worker
/// skips task `i` (yielding `None`) when some task `j < i` already
/// matched the bound; matching tasks publish their index through a
/// `fetch_min`, so the skip set is always consistent with the
/// deterministic cancel point the caller recomputes from values.
fn race(
    ctx: &SolveContext<'_>,
    tasks: &[SlateTask],
    threads: usize,
    bound: Option<f64>,
) -> Vec<Option<TimedOutcome>> {
    let cancel_from = AtomicUsize::new(usize::MAX);
    let timed_solve = |i: usize| -> Option<TimedOutcome> {
        if cancel_from.load(Ordering::SeqCst) < i {
            return None;
        }
        let start = std::time::Instant::now();
        let result = tasks[i].solve(ctx);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        if let (Some(b), Ok(sol)) = (bound, &result) {
            if sol.objective_ms <= b {
                cancel_from.fetch_min(i, Ordering::SeqCst);
            }
        }
        Some((result, elapsed))
    };
    let threads = effective_threads(threads).min(tasks.len());
    if threads <= 1 {
        return (0..tasks.len()).map(timed_solve).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Option<TimedOutcome>>>> =
        tasks.iter().map(|_| Mutex::new(None)).collect();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                *slots[i].lock() = Some(timed_solve(i));
            });
        }
    })
    .expect("portfolio members must not panic");
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slate slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{k5, pipe4};
    use crate::{CostModel, Instance, NodeId};
    use elpc_pipeline::Pipeline;

    fn cost() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn portfolio_is_thread_count_invariant() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let base = PortfolioConfig::for_objective(objective);
            let serial = solve_portfolio(&ctx, objective, &base.clone().threads(1)).unwrap();
            let two = solve_portfolio(&ctx, objective, &base.clone().threads(2)).unwrap();
            let all = solve_portfolio(&ctx, objective, &base.threads(0)).unwrap();
            for other in [&two, &all] {
                assert_eq!(serial.winner, other.winner);
                assert_eq!(serial.solution.assignment, other.solution.assignment);
                assert_eq!(
                    serial.solution.objective_ms.to_bits(),
                    other.solution.objective_ms.to_bits()
                );
                for (a, b) in serial.members.iter().zip(&other.members) {
                    assert_eq!(a.name, b.name);
                    assert_eq!(a.objective_ms, b.objective_ms);
                    assert_eq!(a.error, b.error);
                    assert_eq!(a.won, b.won);
                    assert_eq!(a.cancelled, b.cancelled);
                }
            }
        }
    }

    #[test]
    fn fanned_early_cancel_race_is_thread_count_invariant() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let base_name = match objective {
                Objective::MinDelay => "lns_delay",
                Objective::MaxRate => "lns_rate",
            };
            let base = PortfolioConfig::for_objective(objective)
                .fan(FannedMember {
                    base: base_name,
                    seeds: vec![1, 2, 3],
                    budgets: vec![500, 5000],
                })
                .early_cancel();
            let serial = solve_portfolio(&ctx, objective, &base.clone().threads(1)).unwrap();
            let all = solve_portfolio(&ctx, objective, &base.threads(0)).unwrap();
            assert_eq!(serial.members.len(), 6 + 3 * 2);
            assert_eq!(serial.winner, all.winner);
            assert_eq!(serial.solution.assignment, all.solution.assignment);
            assert_eq!(
                serial.solution.objective_ms.to_bits(),
                all.solution.objective_ms.to_bits()
            );
            for (a, b) in serial.members.iter().zip(&all.members) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.objective_ms, b.objective_ms);
                assert_eq!(a.error, b.error);
                assert_eq!(a.won, b.won);
                assert_eq!(a.cancelled, b.cancelled);
            }
        }
    }

    #[test]
    fn early_cancel_reports_everything_after_the_bound_match() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        // the routed-optimal DP leads the slate and always matches the
        // delay bound, so every later member must report cancelled
        let race = solve_portfolio(
            &ctx,
            Objective::MinDelay,
            &PortfolioConfig::for_objective(Objective::MinDelay).early_cancel(),
        )
        .unwrap();
        assert_eq!(race.winner, "elpc_delay_routed");
        assert!(race.members[0].won && !race.members[0].cancelled);
        for m in &race.members[1..] {
            assert!(m.cancelled, "{} should be cancelled", m.name);
            assert_eq!(m.objective_ms, None);
            assert_eq!(m.error, None);
            assert!(!m.won);
        }
        // the winning value is still the routed optimum
        let exact = elpc_delay::solve_routed_ctx(&ctx).unwrap();
        assert_eq!(
            race.solution.objective_ms.to_bits(),
            exact.objective_ms.to_bits()
        );
    }

    #[test]
    fn fanned_members_expand_seeds_by_budgets_in_order() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let race = solve_portfolio(
            &ctx,
            Objective::MinDelay,
            &PortfolioConfig {
                members: vec!["greedy_delay"],
                fanned: vec![FannedMember {
                    base: "lns_delay",
                    seeds: vec![7, 8],
                    budgets: vec![100, 1000],
                }],
                ..Default::default()
            },
        )
        .unwrap();
        let names: Vec<&str> = race.members.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "greedy_delay",
                "lns_delay[seed=7,evals=100]",
                "lns_delay[seed=7,evals=1000]",
                "lns_delay[seed=8,evals=100]",
                "lns_delay[seed=8,evals=1000]",
            ]
        );
        // every fanned variant solved and none beat the winner
        for m in &race.members {
            let ms = m.objective_ms.expect("k5 is feasible for everything");
            assert!(race.solution.objective_ms <= ms + 1e-12);
        }
    }

    #[test]
    fn winner_is_never_beaten_by_any_member() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let race = solve_portfolio(
                &ctx,
                objective,
                &PortfolioConfig::for_objective(objective).threads(0),
            )
            .unwrap();
            assert_eq!(race.members.iter().filter(|m| m.won).count(), 1);
            for m in &race.members {
                if let Some(ms) = m.objective_ms {
                    assert!(
                        race.solution.objective_ms <= ms + 1e-12,
                        "{} beat the declared winner {}",
                        m.name,
                        race.winner
                    );
                }
                assert!(m.elapsed_ms >= 0.0);
            }
        }
    }

    #[test]
    fn ties_break_by_slate_order() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        // the same solver twice: identical values, the first listing wins
        let race = solve_portfolio(
            &ctx,
            Objective::MinDelay,
            &PortfolioConfig {
                members: vec!["greedy_delay", "greedy_delay"],
                threads: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(race.members[0].won && !race.members[1].won);
    }

    #[test]
    fn bad_slates_are_rejected() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        for members in [
            vec![],
            vec!["no_such_solver"],
            vec!["elpc_rate_routed"], // wrong objective
            vec!["portfolio_delay"],  // no nesting
        ] {
            assert!(matches!(
                solve_portfolio(
                    &ctx,
                    Objective::MinDelay,
                    &PortfolioConfig {
                        members,
                        ..Default::default()
                    }
                ),
                Err(MappingError::BadConfig(_))
            ));
        }
        for fanned in [
            FannedMember {
                base: "greedy_delay", // not a metaheuristic
                seeds: vec![1],
                budgets: vec![100],
            },
            FannedMember {
                base: "lns_rate", // wrong objective
                seeds: vec![1],
                budgets: vec![100],
            },
            FannedMember {
                base: "lns_delay",
                seeds: vec![], // no seeds
                budgets: vec![100],
            },
            FannedMember {
                base: "lns_delay",
                seeds: vec![1],
                budgets: vec![0], // zero budget tier
            },
        ] {
            assert!(matches!(
                solve_portfolio(
                    &ctx,
                    Objective::MinDelay,
                    &PortfolioConfig {
                        fanned: vec![fanned],
                        ..Default::default()
                    }
                ),
                Err(MappingError::BadConfig(_))
            ));
        }
    }

    #[test]
    fn infeasible_when_every_member_is_infeasible() {
        let net = k5();
        // 6 modules on 5 nodes: the whole rate slate is infeasible
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4); 4], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        for config in [
            PortfolioConfig::for_objective(Objective::MaxRate),
            // the bound is unavailable on an infeasible instance, so the
            // early-cancel path must collapse errors identically
            PortfolioConfig::for_objective(Objective::MaxRate).early_cancel(),
        ] {
            assert!(matches!(
                solve_portfolio(&ctx, Objective::MaxRate, &config),
                Err(MappingError::Infeasible(_))
            ));
        }
    }
}
