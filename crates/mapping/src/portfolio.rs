//! The portfolio meta-solver: a slate of registry members racing on one
//! shared context.
//!
//! The registry makes every algorithm callable by name against a shared
//! [`SolveContext`]; the portfolio turns that into a self-racing ensemble.
//! [`solve_portfolio`] runs a configurable slate of registered solvers —
//! concurrently on crossbeam scoped threads when the config asks for more
//! than one worker — against **one** shared metric closure, then returns
//! the best result with per-member timing/quality attribution.
//!
//! ## Determinism
//!
//! The winner is chosen **by value, never by finish order**: every member
//! is deterministic (the seeded metaheuristics included) and a member's
//! result cannot depend on what the closure already contains (caching
//! changes *when* trees are built, never what a query returns), so the
//! member outcomes are identical at any thread count. Ties on the
//! objective are broken by slate order — the earliest member with the
//! minimal objective wins — so the portfolio's solution is bit-identical
//! whether the slate ran serially, on two threads, or on all CPUs.
//!
//! The registry entries (`portfolio_delay` / `portfolio_rate`) run the
//! default slates below with the context's
//! [`SolveContext::warm_threads`] as the worker count: a plain
//! [`SolveContext::new`] context races the slate serially, a
//! `with_threads(inst, cost, 0)` context races it on all CPUs. Because
//! `elpc_delay_routed` — provably optimal for the routed delay space —
//! leads the delay slate, `portfolio_delay` inherits its optimality while
//! attributing how close every heuristic came.
//!
//! N members hammering one sharded closure is also the strongest
//! concurrency stress in the workspace; `tests/context_concurrency.rs`
//! pins that the `hits + misses == queries` statistics invariant and the
//! closure contents survive it bit-for-bit.

use crate::context::effective_threads;
use crate::{solver, MappingError, Objective, Result, Solution, SolveContext, Solver};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The default delay slate, in tie-break priority order. Leads with the
/// routed-optimal DP, then the polynomial baselines, then the
/// metaheuristics (the budgeted `exact_*` solvers are exponential and stay
/// out of the default race).
pub const DELAY_SLATE: [&str; 6] = [
    "elpc_delay_routed",
    "streamline_delay",
    "greedy_delay",
    "tabu_delay",
    "anneal_delay",
    "genetic_delay",
];

/// The default rate slate, in tie-break priority order.
pub const RATE_SLATE: [&str; 6] = [
    "elpc_rate_routed",
    "streamline_rate",
    "greedy_rate",
    "tabu_rate",
    "anneal_rate",
    "genetic_rate",
];

/// Configuration of the portfolio meta-solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Registry names to race, in tie-break priority order (the earliest
    /// member with the minimal objective wins). Members must all optimize
    /// the portfolio's objective and may not themselves be portfolios.
    pub members: Vec<&'static str>,
    /// Worker threads: `0` = all CPUs, `1` = serial (the default).
    pub threads: usize,
}

impl PortfolioConfig {
    /// The default slate for `objective`, serial.
    pub fn for_objective(objective: Objective) -> Self {
        let members = match objective {
            Objective::MinDelay => DELAY_SLATE.to_vec(),
            Objective::MaxRate => RATE_SLATE.to_vec(),
        };
        PortfolioConfig {
            members,
            threads: 1,
        }
    }

    /// Sets the worker-thread count (`0` = all CPUs).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn resolve(&self, objective: Objective) -> Result<Vec<&'static dyn Solver>> {
        if self.members.is_empty() {
            return Err(MappingError::BadConfig(
                "portfolio slate must name at least one solver".into(),
            ));
        }
        self.members
            .iter()
            .map(|&name| {
                if name.starts_with("portfolio") {
                    return Err(MappingError::BadConfig(format!(
                        "portfolio slates cannot nest portfolios (`{name}`)"
                    )));
                }
                let s = solver(name).ok_or_else(|| {
                    MappingError::BadConfig(format!("no solver named `{name}` in the registry"))
                })?;
                if s.objective() != objective {
                    return Err(MappingError::BadConfig(format!(
                        "slate member `{name}` optimizes {:?}, portfolio wants {objective:?}",
                        s.objective()
                    )));
                }
                Ok(s)
            })
            .collect()
    }
}

/// One slate member's outcome: what it scored, how long it took, whether it
/// won. The attribution record `workloads::compare` surfaces per case.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberReport {
    /// The member's registry name.
    pub name: &'static str,
    /// Objective in ms when the member solved.
    pub objective_ms: Option<f64>,
    /// The member's error when it failed.
    pub error: Option<MappingError>,
    /// Wall time the member's solve took (ms). Informational only — the
    /// winner is chosen by objective value, never by speed.
    pub elapsed_ms: f64,
    /// True for the member whose solution the portfolio returned.
    pub won: bool,
}

/// A portfolio run: the winning solution plus per-member attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioSolution {
    /// The winning member's solution.
    pub solution: Solution,
    /// The winning member's registry name.
    pub winner: &'static str,
    /// Every member's outcome, in slate order.
    pub members: Vec<MemberReport>,
}

/// Races `config.members` on `ctx` and returns the best result.
///
/// Members run concurrently on crossbeam scoped threads when
/// `config.threads != 1` (`0` = all CPUs), all sharing `ctx`'s metric
/// closure, so the all-pairs transfer trees are built once for the whole
/// slate. The winner is the member with the lowest `objective_ms`, ties
/// broken by slate order; the result is therefore identical at every
/// thread count. When no member solves, the slate's errors collapse to one:
/// [`MappingError::Infeasible`] when every member reported infeasibility,
/// otherwise the first non-infeasibility error in slate order.
///
/// # Examples
///
/// ```
/// use elpc_mapping::{portfolio, CostModel, Instance, Objective, SolveContext};
/// # let mut b = elpc_netsim::Network::builder();
/// # let s = b.add_node(100.0).unwrap();
/// # let m = b.add_node(1000.0).unwrap();
/// # let d = b.add_node(100.0).unwrap();
/// # b.add_link(s, m, 100.0, 0.5).unwrap();
/// # b.add_link(m, d, 100.0, 0.5).unwrap();
/// # let network = b.build().unwrap();
/// # let pipeline = elpc_pipeline::Pipeline::from_stages(1e6, &[(2.0, 1e5)], 1.0).unwrap();
/// let inst = Instance::new(&network, &pipeline, s, d).unwrap();
/// let ctx = SolveContext::new(inst, CostModel::default());
/// let config = portfolio::PortfolioConfig::for_objective(Objective::MinDelay);
/// let race = portfolio::solve_portfolio(&ctx, Objective::MinDelay, &config).unwrap();
/// // the routed-optimal DP leads the slate, so it wins every tie
/// assert_eq!(race.winner, "elpc_delay_routed");
/// assert_eq!(race.members.len(), portfolio::DELAY_SLATE.len());
/// assert!(race.members.iter().all(|m| m.objective_ms.unwrap() >= race.solution.objective_ms));
/// ```
pub fn solve_portfolio(
    ctx: &SolveContext<'_>,
    objective: Objective,
    config: &PortfolioConfig,
) -> Result<PortfolioSolution> {
    let slate = config.resolve(objective)?;
    // when kernel-backed local-search members are racing, snapshot the
    // dense evaluation kernel once up front (parallelized by the context's
    // warm threads) instead of letting the first such member build it
    // mid-race — results are identical either way, only the build is
    // hoisted out of that member's attribution timing
    if slate.iter().any(|s| s.uses_eval_kernel()) {
        ctx.eval_kernel();
    }
    let outcomes = race(ctx, &slate, config.threads);

    // winner by value, ties by slate order — finish order never enters
    let mut winner: Option<(usize, f64)> = None;
    for (i, (result, _)) in outcomes.iter().enumerate() {
        if let Ok(sol) = result {
            if winner.is_none_or(|(_, best)| sol.objective_ms < best) {
                winner = Some((i, sol.objective_ms));
            }
        }
    }

    let Some((win_idx, _)) = winner else {
        let mut first_error: Option<MappingError> = None;
        for (result, _) in outcomes {
            match result {
                Err(e @ MappingError::Infeasible(_)) => {
                    first_error.get_or_insert(e);
                }
                Err(e) => return Err(e),
                Ok(_) => unreachable!("no winner means no Ok outcome"),
            }
        }
        return Err(first_error.expect("slate is non-empty"));
    };

    let members: Vec<MemberReport> = slate
        .iter()
        .zip(&outcomes)
        .enumerate()
        .map(|(i, (s, (result, elapsed_ms)))| MemberReport {
            name: s.name(),
            objective_ms: result.as_ref().ok().map(|sol| sol.objective_ms),
            error: result.as_ref().err().cloned(),
            elapsed_ms: *elapsed_ms,
            won: i == win_idx,
        })
        .collect();
    let (result, _) = outcomes.into_iter().nth(win_idx).expect("winner index");
    Ok(PortfolioSolution {
        solution: result.expect("winner solved"),
        winner: slate[win_idx].name(),
        members,
    })
}

/// One member's raw outcome: the solve result and its wall time in ms.
type TimedOutcome = (Result<Solution>, f64);

/// Runs every slate member once, returning `(result, elapsed_ms)` in slate
/// order — serially when `threads <= 1`, otherwise work-pulled onto scoped
/// worker threads all sharing `ctx`.
fn race(
    ctx: &SolveContext<'_>,
    slate: &[&'static dyn Solver],
    threads: usize,
) -> Vec<TimedOutcome> {
    let timed_solve = |s: &'static dyn Solver| {
        let start = std::time::Instant::now();
        let result = s.solve(ctx);
        (result, start.elapsed().as_secs_f64() * 1e3)
    };
    let threads = effective_threads(threads).min(slate.len());
    if threads <= 1 {
        return slate.iter().map(|&s| timed_solve(s)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<TimedOutcome>>> = slate.iter().map(|_| Mutex::new(None)).collect();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slate.len() {
                    break;
                }
                *slots[i].lock() = Some(timed_solve(slate[i]));
            });
        }
    })
    .expect("portfolio members must not panic");
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slate slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{k5, pipe4};
    use crate::{CostModel, Instance, NodeId};
    use elpc_pipeline::Pipeline;

    fn cost() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn portfolio_is_thread_count_invariant() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let base = PortfolioConfig::for_objective(objective);
            let serial = solve_portfolio(&ctx, objective, &base.clone().threads(1)).unwrap();
            let two = solve_portfolio(&ctx, objective, &base.clone().threads(2)).unwrap();
            let all = solve_portfolio(&ctx, objective, &base.threads(0)).unwrap();
            for other in [&two, &all] {
                assert_eq!(serial.winner, other.winner);
                assert_eq!(serial.solution.assignment, other.solution.assignment);
                assert_eq!(
                    serial.solution.objective_ms.to_bits(),
                    other.solution.objective_ms.to_bits()
                );
                for (a, b) in serial.members.iter().zip(&other.members) {
                    assert_eq!(a.name, b.name);
                    assert_eq!(a.objective_ms, b.objective_ms);
                    assert_eq!(a.error, b.error);
                    assert_eq!(a.won, b.won);
                }
            }
        }
    }

    #[test]
    fn winner_is_never_beaten_by_any_member() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let race = solve_portfolio(
                &ctx,
                objective,
                &PortfolioConfig::for_objective(objective).threads(0),
            )
            .unwrap();
            assert_eq!(race.members.iter().filter(|m| m.won).count(), 1);
            for m in &race.members {
                if let Some(ms) = m.objective_ms {
                    assert!(
                        race.solution.objective_ms <= ms + 1e-12,
                        "{} beat the declared winner {}",
                        m.name,
                        race.winner
                    );
                }
                assert!(m.elapsed_ms >= 0.0);
            }
        }
    }

    #[test]
    fn ties_break_by_slate_order() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        // the same solver twice: identical values, the first listing wins
        let race = solve_portfolio(
            &ctx,
            Objective::MinDelay,
            &PortfolioConfig {
                members: vec!["greedy_delay", "greedy_delay"],
                threads: 0,
            },
        )
        .unwrap();
        assert!(race.members[0].won && !race.members[1].won);
    }

    #[test]
    fn bad_slates_are_rejected() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        for members in [
            vec![],
            vec!["no_such_solver"],
            vec!["elpc_rate_routed"], // wrong objective
            vec!["portfolio_delay"],  // no nesting
        ] {
            assert!(matches!(
                solve_portfolio(
                    &ctx,
                    Objective::MinDelay,
                    &PortfolioConfig {
                        members,
                        threads: 1
                    }
                ),
                Err(MappingError::BadConfig(_))
            ));
        }
    }

    #[test]
    fn infeasible_when_every_member_is_infeasible() {
        let net = k5();
        // 6 modules on 5 nodes: the whole rate slate is infeasible
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4); 4], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        assert!(matches!(
            solve_portfolio(
                &ctx,
                Objective::MaxRate,
                &PortfolioConfig::for_objective(Objective::MaxRate)
            ),
            Err(MappingError::Infeasible(_))
        ));
    }
}
