//! Mapping error type.

use std::fmt;

/// Errors produced by mapping construction, validation, and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    /// No feasible mapping exists for the instance (§4.3 discusses when
    /// this happens: pipeline shorter than the shortest path, or — without
    /// node reuse — longer than the longest simple path).
    Infeasible(String),
    /// A mapping failed structural validation against its instance.
    InvalidMapping(String),
    /// Underlying network-model error.
    Network(elpc_netsim::NetworkError),
    /// Underlying pipeline-model error.
    Pipeline(elpc_pipeline::PipelineError),
    /// A solver was configured with invalid parameters.
    BadConfig(String),
    /// An exhaustive solver ran out of its exploration budget before
    /// proving optimality (the instance is too large for exact search).
    BudgetExhausted {
        /// The budget that was exhausted (expansions or paths).
        budget: usize,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::Infeasible(msg) => write!(f, "no feasible mapping: {msg}"),
            MappingError::InvalidMapping(msg) => write!(f, "invalid mapping: {msg}"),
            MappingError::Network(e) => write!(f, "network error: {e}"),
            MappingError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            MappingError::BadConfig(msg) => write!(f, "bad solver configuration: {msg}"),
            MappingError::BudgetExhausted { budget } => write!(
                f,
                "exact search exhausted its exploration budget of {budget}; \
                 the instance is too large for exhaustive solving"
            ),
        }
    }
}

impl std::error::Error for MappingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MappingError::Network(e) => Some(e),
            MappingError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<elpc_netsim::NetworkError> for MappingError {
    fn from(e: elpc_netsim::NetworkError) -> Self {
        MappingError::Network(e)
    }
}

impl From<elpc_pipeline::PipelineError> for MappingError {
    fn from(e: elpc_pipeline::PipelineError) -> Self {
        MappingError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(MappingError::Infeasible("dst unreachable".into())
            .to_string()
            .contains("dst unreachable"));
        assert!(MappingError::BadConfig("k_labels = 0".into())
            .to_string()
            .contains("k_labels"));
    }

    #[test]
    fn conversions_wrap_sources() {
        use std::error::Error;
        let ne = elpc_netsim::NetworkError::Invalid("x".into());
        let me: MappingError = ne.into();
        assert!(me.source().is_some());
        let pe = elpc_pipeline::PipelineError::TooShort(1);
        let me: MappingError = pe.into();
        assert!(me.source().is_some());
    }
}
