//! Dense evaluation kernel and O(1) delta moves for the local-search
//! solver family.
//!
//! The metaheuristics (annealing, genetic, tabu) and the rate polish spend
//! their entire budget evaluating assignments, and every transfer term of a
//! closure-backed evaluation pays a shard `RwLock` read, a hash lookup, and
//! an `Arc` clone through [`crate::MetricClosure::routed_from`] — even
//! though a reassign/swap move perturbs at most three terms. This module
//! snapshots the closure into dense, lock-free tables once per instance and
//! serves two query tiers on top of them:
//!
//! * **Full evaluation** ([`EvalKernel::full_delay_ms`] /
//!   [`EvalKernel::full_bottleneck_ms`]) — an allocation-free array scan
//!   that reproduces [`crate::routed::routed_delay_ms_ctx`] /
//!   [`crate::routed::routed_bottleneck_ms_ctx`] **bit for bit** (the same
//!   terms accumulated in the same order; infeasibility reported as
//!   `f64::INFINITY` instead of an error). Pinned by the kernel-equivalence
//!   proptests.
//! * **Delta evaluation** ([`DeltaEval`]) — scoring a reassign/swap
//!   [`MoveSpec`] against the current assignment by the ≤ 6 stage terms it
//!   changes. MinDelay updates a running sum in O(1); MaxRate answers
//!   bottleneck queries in O(1) from prefix/suffix maxima plus a sparse
//!   range-max table over the stage-time array (the trick proven in
//!   [`crate::routed::polish_rate_assignment_ctx`]), and is *exact*: `max`
//!   is insensitive to rounding order, so a MaxRate delta value is bit-for-
//!   bit the full evaluation of the candidate.
//!
//! ## Exact-on-commit reconciliation
//!
//! A MinDelay delta value can drift from the candidate's full evaluation by
//! float-rounding ulps (sums are order-sensitive). The contract that keeps
//! reported objectives exactly reconcilable with the routed evaluators:
//! delta values steer the *search* (accept/reject, neighborhood ranking),
//! but [`DeltaEval::apply`] re-sums the committed assignment exactly —
//! [`DeltaEval::objective_ms`] is therefore always bit-identical to the
//! full evaluation of the current assignment, and every incumbent a solver
//! records re-evaluates exactly under
//! [`crate::routed::routed_delay_ms_ctx`] /
//! [`crate::routed::routed_bottleneck_ms_ctx`].
//!
//! ## Construction and the reuse tiers
//!
//! [`EvalKernel::build`] warms the context's shared closure through
//! [`crate::MetricClosure::par_warm`] (all sources × the pipeline's
//! distinct payload sizes, on the context's warm-thread count) and then
//! copies the per-source distance rows into flat matrices. Construction
//! therefore parallelizes like every other tree build, trees seeded from a
//! `ClosureBank` are reused instead of recomputed, and the trees the kernel
//! does build stay in the closure for every later solver on the context.
//! [`crate::SolveContext::eval_kernel`] memoizes the kernel per context, so
//! a compare row or portfolio slate builds it once for all six
//! metaheuristic members and the rate polish.
//!
//! Infeasible transfers (disconnected host pairs) are stored as
//! `f64::INFINITY`; the delta tier tracks infinite terms by count (never by
//! arithmetic), so searches can move through and out of infeasible
//! assignments without `∞ − ∞` poisoning.

use crate::{Objective, SolveContext};
use elpc_netgraph::NodeId;
use std::sync::Arc;

/// Dense snapshot of everything a routed evaluation reads: per-payload
/// transfer matrices and per-module compute-time vectors. Immutable, `Send
/// + Sync`, shared via [`crate::SolveContext::eval_kernel`].
#[derive(Debug, Clone)]
pub struct EvalKernel {
    n: usize,
    k: usize,
    /// `compute[j * k + v]` = compute time (ms) of module `j` on node `v`
    /// (`0.0` when the module has no work).
    compute: Vec<f64>,
    /// `transfer[payload_idx * k * k + a * k + b]` = cheapest routed
    /// transfer time (ms) of the payload from `a` to `b`; `0.0` on the
    /// diagonal, `f64::INFINITY` when unreachable.
    transfer: Vec<f64>,
    /// Boundary `j` (the module `j → j+1` transfer) → payload index.
    payload_of: Vec<u32>,
}

impl EvalKernel {
    /// Snapshots `ctx`'s closure into dense tables: one `k × k` matrix per
    /// distinct boundary payload plus the `n × k` compute matrix. Missing
    /// trees are built through [`crate::MetricClosure::par_warm`] on the
    /// context's warm-thread count, so construction parallelizes and
    /// bank-seeded trees are reused.
    pub fn build(ctx: &SolveContext<'_>) -> Self {
        let inst = ctx.instance();
        let pipe = inst.pipeline;
        let net = inst.network;
        let n = pipe.len();
        let k = net.node_count();

        // distinct boundary payloads in first-seen order, keyed by bit
        // pattern (the closure's own key discipline)
        let mut payloads: Vec<f64> = Vec::new();
        let mut payload_of: Vec<u32> = Vec::with_capacity(n.saturating_sub(1));
        for j in 0..n.saturating_sub(1) {
            let bytes = pipe.module(j).output_bytes;
            let idx = payloads
                .iter()
                .position(|p| p.to_bits() == bytes.to_bits())
                .unwrap_or_else(|| {
                    payloads.push(bytes);
                    payloads.len() - 1
                });
            payload_of.push(idx as u32);
        }

        let sources: Vec<NodeId> = net.node_ids().collect();
        ctx.closure()
            .par_warm(&sources, &payloads, ctx.warm_threads());

        let mut transfer = vec![0.0_f64; payloads.len() * k * k];
        for (p, &bytes) in payloads.iter().enumerate() {
            for a in 0..k {
                let tree = ctx.routed_from(NodeId::from_index(a), bytes);
                let row = &mut transfer[p * k * k + a * k..p * k * k + (a + 1) * k];
                row.copy_from_slice(&tree.dist);
                // routed_transfer_ms semantics: a same-node transfer is free
                row[a] = 0.0;
            }
        }

        let mut compute = vec![0.0_f64; n * k];
        for j in 0..n {
            let work = pipe.compute_work(j);
            if work > 0.0 {
                for v in 0..k {
                    compute[j * k + v] = work / net.power(NodeId::from_index(v));
                }
            }
        }

        EvalKernel {
            n,
            k,
            compute,
            transfer,
            payload_of,
        }
    }

    /// Number of pipeline modules `n`.
    pub fn n_modules(&self) -> usize {
        self.n
    }

    /// Number of network nodes `k`.
    pub fn node_count(&self) -> usize {
        self.k
    }

    /// Number of distinct boundary payload sizes (= transfer matrices).
    pub fn payload_count(&self) -> usize {
        self.transfer.len() / (self.k * self.k).max(1)
    }

    /// Routed transfer time (ms) of boundary `j`'s payload from `a` to `b`:
    /// `0.0` when `a == b`, `f64::INFINITY` when unreachable. Identical to
    /// the closure's answer for the same query.
    #[inline]
    pub fn transfer_ms(&self, boundary: usize, a: NodeId, b: NodeId) -> f64 {
        let p = self.payload_of[boundary] as usize;
        self.transfer[p * self.k * self.k + a.index() * self.k + b.index()]
    }

    /// Compute time (ms) of module `j` on node `v` (`0.0` for work-free
    /// modules).
    #[inline]
    pub fn compute_ms(&self, j: usize, v: NodeId) -> f64 {
        self.compute[j * self.k + v.index()]
    }

    /// End-to-end routed delay (ms) of an assignment; `f64::INFINITY` when
    /// any transfer is unreachable. Bit-for-bit equal to
    /// [`crate::routed::routed_delay_ms_ctx`] on shape-valid assignments
    /// (same terms, same accumulation order; that function reports
    /// unreachable transfers as an error instead).
    pub fn full_delay_ms(&self, assignment: &[NodeId]) -> f64 {
        debug_assert_eq!(assignment.len(), self.n);
        let mut total = 0.0_f64;
        for j in 0..self.n {
            total += self.compute_ms(j, assignment[j]);
            if j + 1 < self.n {
                total += self.transfer_ms(j, assignment[j], assignment[j + 1]);
            }
        }
        total
    }

    /// Bottleneck stage time (ms) of an assignment; `f64::INFINITY` when a
    /// transfer is unreachable or (under `require_distinct`) a host is
    /// reused. Bit-for-bit equal to
    /// [`crate::routed::routed_bottleneck_ms_ctx`] whenever that function
    /// returns a value (`max` is rounding-order-insensitive; its error
    /// cases map to `∞` here).
    pub fn full_bottleneck_ms(&self, assignment: &[NodeId], require_distinct: bool) -> f64 {
        debug_assert_eq!(assignment.len(), self.n);
        if require_distinct {
            for (i, &a) in assignment.iter().enumerate() {
                if assignment[..i].contains(&a) {
                    return f64::INFINITY;
                }
            }
        }
        let mut bottleneck = 0.0_f64;
        for j in 0..self.n {
            bottleneck = bottleneck.max(self.compute_ms(j, assignment[j]));
            if j + 1 < self.n {
                bottleneck = bottleneck.max(self.transfer_ms(j, assignment[j], assignment[j + 1]));
            }
        }
        bottleneck
    }

    /// The objective of `assignment` under `objective` (distinct hosts
    /// enforced for MaxRate); `f64::INFINITY` marks infeasibility.
    pub fn full_objective_ms(&self, objective: Objective, assignment: &[NodeId]) -> f64 {
        match objective {
            Objective::MinDelay => self.full_delay_ms(assignment),
            Objective::MaxRate => self.full_bottleneck_ms(assignment, true),
        }
    }

    /// Patches this kernel against a perturbation instead of rebuilding it:
    /// transfer rows whose `(payload, source)` tree went stale (the `stale`
    /// keys a churn repair identified, e.g. via
    /// [`crate::delta::partition_stale`]) are re-copied from `ctx`'s
    /// *repaired* closure, and compute columns of power-perturbed nodes are
    /// re-priced from `ctx`'s network; every other entry is memcpy'd
    /// unchanged. The result is bit-identical to [`EvalKernel::build`] on
    /// `ctx` — at the cost of the changed rows only.
    ///
    /// `ctx` must be a context over the perturbed network with the same
    /// pipeline (same module count, payloads, and node count as this
    /// kernel) whose closure already holds the rebuilt trees; stale keys
    /// for payloads this kernel never tabulated are ignored.
    pub fn patched_for_churn(
        &self,
        ctx: &SolveContext<'_>,
        delta: &crate::delta::NetworkDelta,
        stale: &[crate::TreeKey],
    ) -> EvalKernel {
        let pipe = ctx.instance().pipeline;
        let net = ctx.instance().network;
        assert_eq!(pipe.len(), self.n, "pipeline shape must match the kernel");
        assert_eq!(
            net.node_count(),
            self.k,
            "network size must match the kernel"
        );

        // the kernel's payload table, re-derived exactly as build() does
        // (first-seen distinct order by bit pattern)
        let mut payloads: Vec<f64> = Vec::new();
        for j in 0..self.n.saturating_sub(1) {
            let bytes = pipe.module(j).output_bytes;
            if !payloads.iter().any(|p| p.to_bits() == bytes.to_bits()) {
                payloads.push(bytes);
            }
        }

        let mut patched = self.clone();
        let k = self.k;
        for key in stale {
            let Some(p) = payloads
                .iter()
                .position(|pl| pl.to_bits() == key.payload().to_bits())
            else {
                continue;
            };
            let a = key.source_node().index();
            let tree = ctx.routed_from(key.source_node(), key.payload());
            let row = &mut patched.transfer[p * k * k + a * k..p * k * k + (a + 1) * k];
            row.copy_from_slice(&tree.dist);
            row[a] = 0.0;
        }
        let repriced_nodes = delta
            .nodes
            .iter()
            .map(|np| np.node)
            .chain(delta.node_failures.iter().map(|nf| nf.node));
        for node in repriced_nodes {
            let v = node.index();
            for j in 0..self.n {
                let work = pipe.compute_work(j);
                if work > 0.0 {
                    // a crashed node's power is 0 → compute prices at +∞,
                    // exactly what a cold build over the failed network does
                    patched.compute[j * k + v] = work / net.power(node);
                }
            }
        }
        patched
    }
}

/// One local-search neighborhood move against a current assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveSpec {
    /// Reassign module `stage` to host `to`.
    Reassign {
        /// The module being moved.
        stage: usize,
        /// Its new host.
        to: NodeId,
    },
    /// Swap the hosts of modules `a` and `b`.
    Swap {
        /// First module (any order).
        a: usize,
        /// Second module.
        b: usize,
    },
}

/// Outcome of a bounded (early-exit) move evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundedEval {
    /// The candidate is feasible with this objective (ms).
    Feasible(f64),
    /// Abandoned early: a delta-updated stage term already reached the
    /// caller's bound, so the candidate cannot score below it.
    Pruned,
    /// The candidate is infeasible (an unreachable transfer).
    Infeasible,
}

/// Stage-term layout shared with the polish: `2j` is module `j`'s compute
/// term, `2j + 1` is boundary `j`'s transfer term; `2n − 1` terms total.
#[inline]
fn term_len(n: usize) -> usize {
    2 * n - 1
}

/// Incremental evaluation state over one [`EvalKernel`]: the current
/// assignment, its stage-term array, and the objective-specific structures
/// that answer [`DeltaEval::eval_move`] in O(1).
///
/// MinDelay keeps a running sum of finite terms plus a count of infinite
/// ones; MaxRate keeps prefix/suffix maxima and a sparse range-max table
/// over the term array. [`DeltaEval::apply`] commits a move and re-derives
/// the exact objective (see the module docs for the reconciliation
/// contract); buffers are reused across [`DeltaEval::reset`] calls, so a
/// whole restart loop allocates nothing after the first iteration.
///
/// Under MaxRate the *caller* preserves the distinct-hosts invariant
/// (reassign only to hosts unused per [`DeltaEval::used_hosts`], as every
/// search in this crate does); delta values do not re-check it, exactly as
/// the reassign/swap neighborhoods never generate a violating move.
#[derive(Debug, Clone)]
pub struct DeltaEval {
    kernel: Arc<EvalKernel>,
    objective: Objective,
    assign: Vec<NodeId>,
    /// Host-usage marks, maintained only under MaxRate (distinct hosts).
    used: Vec<bool>,
    /// Stage terms of the current assignment (layout: [`term_len`]).
    terms: Vec<f64>,
    /// Number of infinite entries in `terms`.
    inf_terms: usize,
    /// MinDelay: exact sum of the (finite) terms in index order.
    sum: f64,
    /// MaxRate: `pre[i]` = max of `terms[..i]` (`pre[0] = 0`).
    pre: Vec<f64>,
    /// MaxRate: `suf[i]` = max of `terms[i..]` (`suf[len] = 0`).
    suf: Vec<f64>,
    /// MaxRate: sparse range-max table; `sparse[l][i]` covers
    /// `terms[i..i + 2^l]`.
    sparse: Vec<Vec<f64>>,
}

/// The ≤ 6 stage terms a move changes: `(term index, new value)` pairs with
/// unique indices.
type Affected = ([(usize, f64); 6], usize);

impl DeltaEval {
    /// State for `assignment` (shape-valid for the kernel's instance).
    pub fn new(kernel: Arc<EvalKernel>, objective: Objective, assignment: &[NodeId]) -> Self {
        let n = kernel.n_modules();
        let k = kernel.node_count();
        debug_assert_eq!(assignment.len(), n);
        let mut state = DeltaEval {
            kernel,
            objective,
            assign: assignment.to_vec(),
            used: vec![false; k],
            terms: vec![0.0; term_len(n)],
            inf_terms: 0,
            sum: 0.0,
            pre: Vec::new(),
            suf: Vec::new(),
            sparse: Vec::new(),
        };
        state.recompute();
        state
    }

    /// Re-seats the state on a new assignment, reusing every buffer.
    pub fn reset(&mut self, assignment: &[NodeId]) {
        debug_assert_eq!(assignment.len(), self.assign.len());
        self.assign.copy_from_slice(assignment);
        self.recompute();
    }

    /// The current assignment.
    pub fn assignment(&self) -> &[NodeId] {
        &self.assign
    }

    /// Host-usage marks (`used[v]` ⇔ node `v` hosts a module). Maintained
    /// only under MaxRate; all-`false` under MinDelay.
    pub fn used_hosts(&self) -> &[bool] {
        &self.used
    }

    /// Exact objective of the current assignment (bit-identical to the
    /// kernel's full evaluation); `None` when it is infeasible.
    pub fn objective_ms(&self) -> Option<f64> {
        match self.objective {
            Objective::MinDelay => (self.inf_terms == 0).then_some(self.sum),
            Objective::MaxRate => {
                let b = self.suf[0];
                b.is_finite().then_some(b)
            }
        }
    }

    /// Scores `mv` against the current assignment in O(1): the candidate's
    /// objective (`None` when infeasible). MaxRate values are exact;
    /// MinDelay values may differ from the candidate's full evaluation by
    /// rounding ulps (see the module docs).
    #[inline]
    pub fn eval_move(&self, mv: MoveSpec) -> Option<f64> {
        match self.eval_move_bounded(mv, f64::INFINITY) {
            BoundedEval::Feasible(ms) => Some(ms),
            BoundedEval::Infeasible => None,
            BoundedEval::Pruned => unreachable!("an infinite bound never prunes"),
        }
    }

    /// [`DeltaEval::eval_move`] with early-exit pruning: returns
    /// [`BoundedEval::Pruned`] as soon as the candidate's objective is
    /// known to be `>= prune_at` (MaxRate: a delta-updated stage term — or
    /// the maximum over the untouched stages — already reaches the bound;
    /// MinDelay falls back to a plain evaluation with a final comparison,
    /// since partial sums do not bound the total from below as usefully).
    #[inline]
    pub fn eval_move_bounded(&self, mv: MoveSpec, prune_at: f64) -> BoundedEval {
        if self.is_noop(mv) {
            return match self.objective_ms() {
                Some(ms) if ms < prune_at => BoundedEval::Feasible(ms),
                Some(_) => BoundedEval::Pruned,
                None => BoundedEval::Infeasible,
            };
        }
        let (affected, len) = self.affected_terms(mv);
        match self.objective {
            Objective::MinDelay => {
                let mut inf = self.inf_terms;
                let mut delta = 0.0_f64;
                for &(idx, new) in &affected[..len] {
                    let old = self.terms[idx];
                    if old.is_finite() {
                        delta -= old;
                    } else {
                        inf -= 1;
                    }
                    if new.is_finite() {
                        delta += new;
                    } else {
                        inf += 1;
                    }
                }
                if inf > 0 {
                    BoundedEval::Infeasible
                } else {
                    let ms = self.sum + delta;
                    if !ms.is_finite() {
                        BoundedEval::Infeasible // finite terms overflowed the sum
                    } else if ms < prune_at {
                        BoundedEval::Feasible(ms)
                    } else {
                        BoundedEval::Pruned
                    }
                }
            }
            Objective::MaxRate => {
                let mut bottleneck = self.max_excluding(mv, &affected[..len]);
                if bottleneck >= prune_at {
                    return if bottleneck.is_finite() {
                        BoundedEval::Pruned
                    } else {
                        BoundedEval::Infeasible
                    };
                }
                for &(_, new) in &affected[..len] {
                    bottleneck = bottleneck.max(new);
                    if bottleneck >= prune_at {
                        return if bottleneck.is_finite() {
                            BoundedEval::Pruned
                        } else {
                            BoundedEval::Infeasible
                        };
                    }
                }
                if bottleneck.is_finite() {
                    BoundedEval::Feasible(bottleneck)
                } else {
                    BoundedEval::Infeasible
                }
            }
        }
    }

    /// Commits `mv` and re-derives the exact objective of the new current
    /// assignment (returned; `None` when it is infeasible). O(changed
    /// terms) for the bookkeeping plus an O(n) exact re-sum (MinDelay) or
    /// an O(n log n) prefix/suffix + sparse-table rebuild (MaxRate).
    pub fn apply(&mut self, mv: MoveSpec) -> Option<f64> {
        if !self.is_noop(mv) {
            let (affected, len) = self.affected_terms(mv);
            for &(idx, new) in &affected[..len] {
                self.terms[idx] = new;
            }
            match mv {
                MoveSpec::Reassign { stage, to } => {
                    if self.objective == Objective::MaxRate {
                        self.used[self.assign[stage].index()] = false;
                        self.used[to.index()] = true;
                    }
                    self.assign[stage] = to;
                }
                MoveSpec::Swap { a, b } => self.assign.swap(a, b),
            }
            self.refresh_aggregates();
        }
        self.objective_ms()
    }

    /// True when `mv` leaves the assignment unchanged (reassigning a module
    /// to its current host, or swapping two modules on the same host).
    #[inline]
    fn is_noop(&self, mv: MoveSpec) -> bool {
        match mv {
            MoveSpec::Reassign { stage, to } => self.assign[stage] == to,
            MoveSpec::Swap { a, b } => a == b || self.assign[a] == self.assign[b],
        }
    }

    /// The `(term index, new value)` pairs `mv` changes. Indices are unique
    /// and grouped into at most two contiguous windows (one per touched
    /// module), which is what [`DeltaEval::max_excluding`] relies on.
    #[inline]
    fn affected_terms(&self, mv: MoveSpec) -> Affected {
        let kernel = &self.kernel;
        let n = kernel.n_modules();
        let a = &self.assign;
        let mut out = [(0usize, 0.0_f64); 6];
        let mut len = 0;
        macro_rules! push {
            ($idx:expr, $val:expr) => {{
                out[len] = ($idx, $val);
                len += 1;
            }};
        }
        match mv {
            MoveSpec::Reassign { stage: j, to } => {
                push!(2 * j, kernel.compute_ms(j, to));
                if j > 0 {
                    push!(2 * j - 1, kernel.transfer_ms(j - 1, a[j - 1], to));
                }
                if j + 1 < n {
                    push!(2 * j + 1, kernel.transfer_ms(j, to, a[j + 1]));
                }
            }
            MoveSpec::Swap { a: x, b: y } => {
                let (lo, hi) = (x.min(y), x.max(y));
                let (new_lo, new_hi) = (a[hi], a[lo]);
                push!(2 * lo, kernel.compute_ms(lo, new_lo));
                push!(2 * hi, kernel.compute_ms(hi, new_hi));
                if lo > 0 {
                    push!(2 * lo - 1, kernel.transfer_ms(lo - 1, a[lo - 1], new_lo));
                }
                if hi + 1 < n {
                    push!(2 * hi + 1, kernel.transfer_ms(hi, new_hi, a[hi + 1]));
                }
                if hi == lo + 1 {
                    // one shared boundary between the swapped modules
                    push!(2 * lo + 1, kernel.transfer_ms(lo, new_lo, new_hi));
                } else {
                    push!(2 * lo + 1, kernel.transfer_ms(lo, new_lo, a[lo + 1]));
                    push!(2 * hi - 1, kernel.transfer_ms(hi - 1, a[hi - 1], new_hi));
                }
            }
        }
        (out, len)
    }

    /// Max over every term *not* touched by `mv`, in O(1): a move's
    /// affected indices form one or two contiguous windows (each touched
    /// module's compute term plus its adjacent transfer terms), so
    /// prefix/suffix maxima cover the outside and the sparse table covers
    /// the gap between the windows of a non-adjacent swap.
    fn max_excluding(&self, mv: MoveSpec, affected: &[(usize, f64)]) -> f64 {
        let n = self.kernel.n_modules();
        // window of one touched module: [2j-1, 2j+1] clipped to the array
        let window = |j: usize| (2 * j - usize::from(j > 0), 2 * j + usize::from(j + 1 < n));
        let (first, second) = match mv {
            MoveSpec::Reassign { stage, .. } => (window(stage), None),
            MoveSpec::Swap { a, b } => {
                let (lo, hi) = (a.min(b), a.max(b));
                if hi == lo + 1 {
                    // adjacent modules share a boundary: one merged window
                    ((window(lo).0, window(hi).1), None)
                } else {
                    (window(lo), Some(window(hi)))
                }
            }
        };
        debug_assert!({
            let inside = |idx: usize| {
                (first.0..=first.1).contains(&idx)
                    || second.is_some_and(|w| (w.0..=w.1).contains(&idx))
            };
            affected.iter().all(|&(idx, _)| inside(idx))
        });
        let last = second.unwrap_or(first);
        let mut m = self.pre[first.0].max(self.suf[last.1 + 1]);
        if let Some(w2) = second {
            debug_assert!(w2.0 > first.1 + 1, "non-adjacent swap windows leave a gap");
            m = m.max(self.range_max(first.1 + 1, w2.0 - 1));
        }
        m
    }

    /// Max of `terms[lo..=hi]` from the sparse table (requires `lo <= hi`).
    fn range_max(&self, lo: usize, hi: usize) -> f64 {
        debug_assert!(lo <= hi);
        let len = hi - lo + 1;
        let lvl = (usize::BITS - 1 - len.leading_zeros()) as usize;
        self.sparse[lvl][lo].max(self.sparse[lvl][hi + 1 - (1 << lvl)])
    }

    /// Rebuilds terms, the inf count, and the objective aggregates from the
    /// current assignment.
    fn recompute(&mut self) {
        let n = self.kernel.n_modules();
        for j in 0..n {
            self.terms[2 * j] = self.kernel.compute_ms(j, self.assign[j]);
            if j + 1 < n {
                self.terms[2 * j + 1] =
                    self.kernel
                        .transfer_ms(j, self.assign[j], self.assign[j + 1]);
            }
        }
        if self.objective == Objective::MaxRate {
            self.used.fill(false);
            for &v in &self.assign {
                self.used[v.index()] = true;
            }
        }
        self.refresh_aggregates();
    }

    /// Re-derives the exact aggregates from `terms`: the MinDelay running
    /// sum (same accumulation order as the full evaluation, so it stays bit-
    /// identical) or the MaxRate prefix/suffix maxima and sparse table.
    fn refresh_aggregates(&mut self) {
        self.inf_terms = self.terms.iter().filter(|t| t.is_infinite()).count();
        match self.objective {
            Objective::MinDelay => {
                // sum of the *finite* terms in index order: with no
                // infinite term this is the identical accumulation order to
                // `full_delay_ms` (bit-for-bit), and while the assignment
                // is infeasible it stays the finite base a delta move can
                // transition back out from (∞ never enters the arithmetic)
                self.sum = self.terms.iter().filter(|t| t.is_finite()).sum();
            }
            Objective::MaxRate => {
                let len = self.terms.len();
                self.pre.resize(len + 1, 0.0);
                self.suf.resize(len + 1, 0.0);
                self.pre[0] = 0.0;
                for i in 0..len {
                    self.pre[i + 1] = self.pre[i].max(self.terms[i]);
                }
                self.suf[len] = 0.0;
                for i in (0..len).rev() {
                    self.suf[i] = self.suf[i + 1].max(self.terms[i]);
                }
                let levels = (usize::BITS - len.leading_zeros()) as usize;
                self.sparse.resize(levels, Vec::new());
                self.sparse[0].clear();
                self.sparse[0].extend_from_slice(&self.terms);
                for l in 1..levels {
                    let half = 1 << (l - 1);
                    let width = 1 << l;
                    let rows = len + 1 - width;
                    let (prev, rest) = self.sparse.split_at_mut(l);
                    let prev = &prev[l - 1];
                    let row = &mut rest[0];
                    row.clear();
                    row.extend((0..rows).map(|i| prev[i].max(prev[i + half])));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{k5, pipe4};
    use crate::{routed, CostModel, Instance, MappingError};
    use elpc_netsim::Network;
    use elpc_pipeline::Pipeline;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn cost() -> CostModel {
        CostModel::default()
    }

    /// Two 2-node islands: transfers across the gap are unreachable.
    fn split_net() -> Network {
        let mut b = Network::builder();
        let n0 = b.add_node(100.0).unwrap();
        let n1 = b.add_node(200.0).unwrap();
        let n2 = b.add_node(300.0).unwrap();
        let n3 = b.add_node(400.0).unwrap();
        b.add_link(n0, n1, 100.0, 0.5).unwrap();
        b.add_link(n2, n3, 100.0, 0.5).unwrap();
        // deliberately disconnected: cross-island transfers are infeasible
        b.build_unchecked()
    }

    #[test]
    fn full_evaluations_match_the_routed_evaluators_bit_for_bit() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let kernel = ctx.eval_kernel();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..200 {
            let mut a: Vec<NodeId> = (0..pipe.len())
                .map(|_| NodeId::from_index(rng.gen_range(0..net.node_count())))
                .collect();
            a[0] = NodeId(0);
            *a.last_mut().unwrap() = NodeId(4);
            let delay = routed::routed_delay_ms_ctx(&ctx, &a).unwrap();
            assert_eq!(delay.to_bits(), kernel.full_delay_ms(&a).to_bits());
            match routed::routed_bottleneck_ms_ctx(&ctx, &a, true) {
                Ok(b) => assert_eq!(b.to_bits(), kernel.full_bottleneck_ms(&a, true).to_bits()),
                Err(MappingError::InvalidMapping(_)) => {
                    assert!(kernel.full_bottleneck_ms(&a, true).is_infinite())
                }
                Err(e) => panic!("unexpected error {e}"),
            }
            let b = routed::routed_bottleneck_ms_ctx(&ctx, &a, false).unwrap();
            assert_eq!(b.to_bits(), kernel.full_bottleneck_ms(&a, false).to_bits());
        }
    }

    #[test]
    fn delta_moves_reconcile_with_full_evaluation() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let kernel = ctx.eval_kernel();
        let n = pipe.len();
        let k = net.node_count();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let start: Vec<NodeId> = if objective == Objective::MaxRate {
                (0..n).map(NodeId::from_index).collect()
            } else {
                let mut a = vec![NodeId(0); n];
                *a.last_mut().unwrap() = NodeId(4);
                a
            };
            let mut state = DeltaEval::new(Arc::clone(&kernel), objective, &start);
            let mut shadow = start.clone();
            for _ in 0..400 {
                let mv = if objective == Objective::MinDelay && rng.gen_bool(0.5) {
                    MoveSpec::Reassign {
                        stage: 1 + rng.gen_range(0..n - 2),
                        to: NodeId::from_index(rng.gen_range(0..k)),
                    }
                } else {
                    let a = 1 + rng.gen_range(0..n - 2);
                    let mut b = 1 + rng.gen_range(0..n - 2);
                    if b == a {
                        b = if b + 1 < n - 1 { b + 1 } else { 1 };
                    }
                    MoveSpec::Swap { a, b }
                };
                // candidate value vs a scratch full evaluation
                let mut cand = shadow.clone();
                match mv {
                    MoveSpec::Reassign { stage, to } => cand[stage] = to,
                    MoveSpec::Swap { a, b } => cand.swap(a, b),
                }
                let full = kernel.full_objective_ms(objective, &cand);
                match state.eval_move(mv) {
                    Some(ms) => {
                        assert!(full.is_finite());
                        if objective == Objective::MaxRate {
                            assert_eq!(ms.to_bits(), full.to_bits(), "rate delta is exact");
                        } else {
                            assert!(
                                (ms - full).abs() <= 1e-9 * full.abs().max(1.0),
                                "delay delta drifted: {ms} vs {full}"
                            );
                        }
                    }
                    None => assert!(full.is_infinite(), "feasibility must agree"),
                }
                // commit and check the exact reconciliation
                let committed = state.apply(mv);
                shadow = cand;
                let full = kernel.full_objective_ms(objective, &shadow);
                match committed {
                    Some(ms) => assert_eq!(ms.to_bits(), full.to_bits(), "apply is exact"),
                    None => assert!(full.is_infinite()),
                }
                assert_eq!(state.assignment(), &shadow[..]);
            }
        }
    }

    #[test]
    fn delta_moves_cross_infeasibility_without_poisoning() {
        let net = split_net();
        // 3 modules; endpoints 0 and 1 are connected, node 2/3 are not
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4)], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(1)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let kernel = ctx.eval_kernel();
        let feasible = vec![NodeId(0), NodeId(1), NodeId(1)];
        let mut state = DeltaEval::new(Arc::clone(&kernel), Objective::MinDelay, &feasible);
        let base = state.objective_ms().expect("feasible start");
        assert_eq!(
            base.to_bits(),
            routed::routed_delay_ms_ctx(&ctx, &feasible)
                .unwrap()
                .to_bits()
        );
        // move the middle module across the island gap: infeasible
        let out = MoveSpec::Reassign {
            stage: 1,
            to: NodeId(2),
        };
        assert_eq!(state.eval_move(out), None);
        assert_eq!(state.apply(out), None);
        assert!(state.objective_ms().is_none());
        // and back: the exact feasible objective returns unchanged
        let back = MoveSpec::Reassign {
            stage: 1,
            to: NodeId(1),
        };
        let restored = state.apply(back).expect("feasible again");
        assert_eq!(restored.to_bits(), base.to_bits());
    }

    #[test]
    fn bounded_evaluation_prunes_exactly_at_the_bound() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let kernel = ctx.eval_kernel();
        let n = pipe.len();
        let start: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        let state = DeltaEval::new(kernel, Objective::MaxRate, &start);
        let mv = MoveSpec::Swap { a: 1, b: 2 };
        let exact = state.eval_move(mv).expect("k5 is fully connected");
        // a bound above the value admits it; at or below the value prunes
        assert_eq!(
            state.eval_move_bounded(mv, exact * 1.0000001),
            BoundedEval::Feasible(exact)
        );
        assert_eq!(state.eval_move_bounded(mv, exact), BoundedEval::Pruned);
        assert_eq!(state.eval_move_bounded(mv, 0.0), BoundedEval::Pruned);
    }

    #[test]
    fn reset_reuses_buffers_and_matches_a_fresh_state() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let kernel = ctx.eval_kernel();
        let n = pipe.len();
        let a: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        let b: Vec<NodeId> = vec![NodeId(0), NodeId(3), NodeId(2), NodeId(4)];
        let mut state = DeltaEval::new(Arc::clone(&kernel), Objective::MaxRate, &a);
        state.reset(&b);
        let fresh = DeltaEval::new(kernel, Objective::MaxRate, &b);
        assert_eq!(state.objective_ms(), fresh.objective_ms());
        assert_eq!(state.assignment(), fresh.assignment());
        assert_eq!(state.used_hosts(), fresh.used_hosts());
    }
}
