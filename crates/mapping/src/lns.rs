//! Large-neighborhood search over free stage→node assignments: destroy a
//! contiguous stage segment, rebuild it by greedy best-insertion, adapt the
//! destroy-operator mix to what actually pays off.
//!
//! PR 5's dense [`crate::eval::EvalKernel`] made a candidate evaluation a
//! few array reads (~25 ns), but the equal-budget metaheuristics spend that
//! budget one move at a time and still leave a measurable quality gap on
//! the larger fig. 2 instances. LNS (Shaw's destroy/repair scheme with
//! Ropke & Pisinger's adaptive operator weights) converts the same budget
//! into *coordinated* multi-stage rewrites: ejecting a whole window of
//! stages and re-inserting it greedily crosses the valleys that defeat
//! single-move neighborhoods. The solver is registered as `lns_delay` /
//! `lns_rate` and searches the exact space the other metaheuristics do —
//! endpoints pinned, MinDelay may reuse hosts, MaxRate requires
//! pairwise-distinct hosts, every candidate scored under routed transport.
//!
//! ## Destroy operators
//!
//! Each round draws a segment length and one of three window selectors:
//!
//! * **random segment** — a uniformly random interior window; pure
//!   diversification.
//! * **worst-contribution segment** — the window whose owned stage terms
//!   (its compute terms plus every transfer term entering, inside, or
//!   leaving it, read straight from the kernel at the current assignment)
//!   score worst: largest sum under MinDelay, largest single term under
//!   MaxRate, with an unreachable (infinite) term beating everything.
//!   Targets the provably most expensive part of the incumbent.
//! * **closure-distance-clustered segment** — seeds a random stage and
//!   picks, among the windows containing it, the one whose hosts are
//!   mutually closest under the routed closure metric (smallest sum of
//!   internal transfer terms). Ejecting a co-located cluster lets the
//!   repair relocate it *as a group*, which single moves cannot.
//!
//! Under MinDelay the destroy collapses the window onto its left anchor's
//! host (internal transfers become zero — the relaxation's natural "empty"
//! state); under MaxRate the window is only marked, since collapsing would
//! violate distinctness, and the repair rescans each stage against the
//! unused-host pool instead.
//!
//! ## Repair and acceptance
//!
//! Repair walks the window left to right; each stage scans its candidate
//! hosts in ascending node order through
//! [`crate::eval::DeltaEval::eval_move_bounded`] (O(1) per candidate,
//! allocation-free, first-wins ties via the strict bound) and commits the
//! best with [`crate::eval::DeltaEval::apply`], which re-derives the exact
//! objective — so every recorded value reconciles bit-for-bit with the
//! routed evaluators. A repaired incumbent is accepted when it is no worse
//! than the current one (sideways moves keep the walk mobile); otherwise
//! the state resets to the incumbent. Every candidate scan counts against
//! [`LnsConfig::budget`], the same currency the other metaheuristics
//! meter, and the search opens with one greedy coordinate-descent sweep of
//! the whole interior before the destroy/repair rounds begin.
//!
//! ## Adaptive operator weights
//!
//! Each operator carries a weight, updated after every round by
//! exponential smoothing (`reaction`) toward a score: finding a new global
//! best scores highest, improving the incumbent less, an accepted sideways
//! move less still, a rejected round zero. Weighted roulette selection
//! then favors whichever destroy operator is currently earning its keep —
//! the classic ALNS scheme, floored so no operator ever starves.
//!
//! ## Determinism
//!
//! All randomness flows from one seeded [`rand_chacha::ChaCha8Rng`]; the
//! search itself is single-threaded on top of the immutable kernel
//! snapshot, and the kernel's values are identical at every
//! [`crate::SolveContext`] thread count (closure warm-up order changes
//! *when* trees are built, never what a candidate scores). The same
//! [`LnsConfig`] on the same instance therefore reproduces the identical
//! mapping bit-for-bit at any thread count — the property
//! `tests/solver_invariants.rs` and the determinism proptest pin.

use crate::eval::{BoundedEval, DeltaEval, EvalKernel, MoveSpec};
use crate::metaheuristic::{track_best, Search};
use crate::{tabu, AssignmentSolution, MappingError, Objective, Result, SolveContext};
use elpc_netgraph::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Number of destroy operators (random / worst-contribution / clustered).
const OPERATORS: usize = 3;
/// Operator indices, in weight-array order.
const OP_RANDOM: usize = 0;
const OP_WORST: usize = 1;
const OP_CLUSTER: usize = 2;
/// Weights never smooth below this floor, so no operator starves.
const MIN_WEIGHT: f64 = 0.05;
/// Scores feeding the weight update: new global best, improved incumbent,
/// accepted sideways move, rejected round.
const SCORE_BEST: f64 = 3.0;
const SCORE_IMPROVED: f64 = 1.5;
const SCORE_ACCEPTED: f64 = 0.5;
const SCORE_REJECTED: f64 = 0.0;

/// Configuration of the large-neighborhood-search solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LnsConfig {
    /// RNG seed; equal seeds reproduce the search exactly.
    pub seed: u64,
    /// Candidate-evaluation budget — the same currency as
    /// `iterations × neighborhood` for tabu and `iterations × restarts`
    /// for annealing, so the registry entries compare at equal budgets.
    pub budget: usize,
    /// Smallest destroyed segment (stages).
    pub min_segment: usize,
    /// Largest destroyed segment (clamped to the interior length).
    pub max_segment: usize,
    /// Exponential-smoothing factor of the adaptive operator weights, in
    /// `(0, 1]`: `w ← (1 − reaction)·w + reaction·score`.
    pub reaction: f64,
}

impl Default for LnsConfig {
    /// The default budget matches the other metaheuristics' 5000 candidate
    /// evaluations (see [`crate::TabuConfig::default`]).
    fn default() -> Self {
        LnsConfig {
            seed: crate::metaheuristic::DEFAULT_SEED,
            budget: 5000,
            min_segment: 2,
            max_segment: 8,
            reaction: 0.25,
        }
    }
}

impl LnsConfig {
    fn validate(&self) -> Result<()> {
        if self.budget == 0 {
            return Err(MappingError::BadConfig(
                "lns needs a positive evaluation budget".into(),
            ));
        }
        if self.min_segment == 0 || self.min_segment > self.max_segment {
            return Err(MappingError::BadConfig(
                "lns segment bounds need 1 ≤ min_segment ≤ max_segment".into(),
            ));
        }
        if !(self.reaction > 0.0 && self.reaction <= 1.0) {
            return Err(MappingError::BadConfig(
                "lns reaction factor must lie in (0, 1]".into(),
            ));
        }
        Ok(())
    }
}

/// The stage terms a window `[lo, hi)` owns at the current assignment: its
/// stages' compute terms plus every transfer term entering, inside, or
/// leaving it. Summed under MinDelay, max'd under MaxRate; an infinite
/// term makes the window score infinite either way.
fn window_contribution(
    kernel: &EvalKernel,
    objective: Objective,
    a: &[NodeId],
    lo: usize,
    hi: usize,
) -> f64 {
    let n = a.len();
    let mut sum = 0.0_f64;
    let mut max = 0.0_f64;
    let mut add = |t: f64| {
        sum += t;
        max = if t > max { t } else { max };
    };
    for j in lo..hi {
        add(kernel.compute_ms(j, a[j]));
    }
    // boundaries lo−1 .. hi−1: the transfers entering, inside, and leaving
    for j in lo - 1..hi.min(n - 1) {
        add(kernel.transfer_ms(j, a[j], a[j + 1]));
    }
    match objective {
        Objective::MinDelay => sum,
        Objective::MaxRate => max,
    }
}

/// How tightly a window's hosts cluster under the routed closure metric:
/// the sum of its internal transfer terms at the current assignment.
fn window_spread(kernel: &EvalKernel, a: &[NodeId], lo: usize, hi: usize) -> f64 {
    let mut spread = 0.0_f64;
    for j in lo..hi - 1 {
        spread += kernel.transfer_ms(j, a[j], a[j + 1]);
    }
    spread
}

/// Weighted roulette over the adaptive operator weights. Weights are
/// positive (floored at [`MIN_WEIGHT`]), so the draw always lands.
fn pick_operator(weights: &[f64; OPERATORS], rng: &mut ChaCha8Rng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut draw = rng.gen::<f64>() * total;
    for (op, &w) in weights.iter().enumerate() {
        draw -= w;
        if draw < 0.0 {
            return op;
        }
    }
    OPERATORS - 1
}

/// The destroy window `[lo, lo + len)` the operator selects. `len` is
/// already clamped to the interior, so a valid `lo ∈ [1, n − 1 − len]`
/// always exists. Ties in the scored operators break toward the lowest
/// `lo` (strict comparisons), keeping the choice deterministic.
fn choose_window(
    op: usize,
    objective: Objective,
    search: &Search,
    state: &DeltaEval,
    len: usize,
    rng: &mut ChaCha8Rng,
) -> usize {
    let n = search.n;
    let interior = n - 2;
    let positions = interior - len + 1;
    match op {
        OP_RANDOM => 1 + rng.gen_range(0..positions),
        OP_WORST => {
            let a = state.assignment();
            let kernel = search.kernel();
            let mut best_lo = 1;
            let mut best_score = f64::NEG_INFINITY;
            for lo in 1..=n - 1 - len {
                let s = window_contribution(kernel, objective, a, lo, lo + len);
                if s > best_score {
                    best_score = s;
                    best_lo = lo;
                }
            }
            best_lo
        }
        _ => {
            debug_assert_eq!(op, OP_CLUSTER);
            // clustered: a random seed stage, then the tightest window
            // (by internal closure spread) containing it
            let seed = 1 + rng.gen_range(0..interior);
            let a = state.assignment();
            let kernel = search.kernel();
            let lo_min = seed.saturating_sub(len - 1).max(1);
            let lo_max = seed.min(n - 1 - len);
            let mut best_lo = lo_min;
            let mut best_spread = f64::INFINITY;
            for lo in lo_min..=lo_max {
                let s = window_spread(kernel, a, lo, lo + len);
                if s < best_spread {
                    best_spread = s;
                    best_lo = lo;
                }
            }
            best_lo
        }
    }
}

/// Greedy best-insertion repair of the window `[lo, hi)`: left to right,
/// each stage scans its candidate hosts in ascending node order — all `k`
/// hosts under MinDelay, the current host plus every unused one under
/// MaxRate — through `eval_move_bounded` with the best score so far as the
/// bound (strict, so the lowest-index host wins ties) and commits the
/// winner. Every scanned candidate counts one evaluation against the
/// budget; the scan stops mid-stage when the budget runs dry.
fn repair_segment(
    search: &Search,
    state: &mut DeltaEval,
    lo: usize,
    hi: usize,
    evals: &mut usize,
    budget: usize,
) {
    for j in lo..hi {
        let mut chosen: Option<MoveSpec> = None;
        let mut bound = f64::INFINITY;
        let cur = state.assignment()[j];
        for v in 0..search.k {
            if *evals >= budget {
                break;
            }
            let to = NodeId::from_index(v);
            if search.distinct() && to != cur && state.used_hosts()[v] {
                continue; // distinctness: only the current or an unused host
            }
            *evals += 1;
            let mv = MoveSpec::Reassign { stage: j, to };
            if let BoundedEval::Feasible(ms) = state.eval_move_bounded(mv, bound) {
                bound = ms;
                chosen = Some(mv);
            }
        }
        if let Some(mv) = chosen {
            let _ = state.apply(mv);
        }
        if *evals >= budget {
            return;
        }
    }
}

/// Large-neighborhood search over stage→node assignments.
///
/// Warm-starts exactly like [`crate::tabu`] (baseline, greedy re-scored
/// under routed semantics, random draws), runs one greedy
/// coordinate-descent sweep over the interior, then destroy/repair rounds
/// until the evaluation budget is spent: an adaptively weighted destroy
/// operator ejects a contiguous stage segment and greedy best-insertion
/// rebuilds it through the kernel's O(1) delta moves (see the module docs
/// for the operators, acceptance rule, and weight scheme). Deterministic
/// for a fixed `(instance, cost model, config)` at any thread count, and —
/// because the greedy solution is a starting candidate — never worse than
/// the greedy baseline of the same objective under routed evaluation.
pub fn solve_lns(
    ctx: &SolveContext<'_>,
    objective: Objective,
    config: &LnsConfig,
) -> Result<AssignmentSolution> {
    config.validate()?;
    let search = Search::new(ctx, objective)?;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let Some((mut current, mut cur_cost)) = tabu::warm_start(ctx, objective, &search, &mut rng)
    else {
        return search.finish(None);
    };
    let mut best: Option<(Vec<NodeId>, f64)> = None;
    track_best(&mut best, &current, cur_cost);

    let n = search.n;
    let interior = n.saturating_sub(2);
    if interior == 0 {
        // a 2-module pipeline has exactly one assignment
        return search.finish(best);
    }

    let mut state = search.delta_state(&current);
    let mut evals = 0usize;

    // the opening sweep: one greedy pass over every interior stage —
    // coordinate descent the destroy/repair rounds then perturb out of
    // its local optimum. "Stay" is always a scanned candidate, so the
    // sweep can only improve the incumbent.
    repair_segment(&search, &mut state, 1, n - 1, &mut evals, config.budget);
    match state.objective_ms() {
        Some(ms) if ms <= cur_cost => {
            cur_cost = ms;
            current.copy_from_slice(state.assignment());
            track_best(&mut best, &current, cur_cost);
        }
        _ => state.reset(&current),
    }

    let mut weights = [1.0_f64; OPERATORS];
    while evals < config.budget {
        let op = pick_operator(&weights, &mut rng);
        let hi_len = config.max_segment.min(interior);
        let lo_len = config.min_segment.min(hi_len);
        let len = lo_len + rng.gen_range(0..hi_len - lo_len + 1);
        let lo = choose_window(op, objective, &search, &state, len, &mut rng);
        let hi = lo + len;

        if !search.distinct() {
            // MinDelay destroy: collapse the window onto its left
            // anchor's host — internal transfers vanish, and DeltaEval
            // tolerates the transient state either way
            let anchor = state.assignment()[lo - 1];
            for j in lo..hi {
                let _ = state.apply(MoveSpec::Reassign {
                    stage: j,
                    to: anchor,
                });
            }
        }
        repair_segment(&search, &mut state, lo, hi, &mut evals, config.budget);

        let (score, accept) = match state.objective_ms() {
            Some(ms) => {
                if best.as_ref().is_none_or(|(_, b)| ms < *b) {
                    (SCORE_BEST, true)
                } else if ms < cur_cost {
                    (SCORE_IMPROVED, true)
                } else if ms <= cur_cost {
                    (SCORE_ACCEPTED, true)
                } else {
                    (SCORE_REJECTED, false)
                }
            }
            None => (SCORE_REJECTED, false),
        };
        if accept {
            cur_cost = state.objective_ms().expect("accepted rounds are feasible");
            current.copy_from_slice(state.assignment());
            track_best(&mut best, &current, cur_cost);
        } else {
            state.reset(&current);
        }
        weights[op] =
            ((1.0 - config.reaction) * weights[op] + config.reaction * score).max(MIN_WEIGHT);
    }
    search.finish(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{k5, pipe4};
    use crate::{elpc_delay, greedy, routed, CostModel, Instance};
    use elpc_pipeline::Pipeline;

    fn cost() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn lns_is_seed_deterministic() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        for objective in [Objective::MinDelay, Objective::MaxRate] {
            let a = solve_lns(
                &SolveContext::new(inst, cost()),
                objective,
                &LnsConfig::default(),
            )
            .unwrap();
            let b = solve_lns(
                &SolveContext::new(inst, cost()),
                objective,
                &LnsConfig::default(),
            )
            .unwrap();
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.objective_ms.to_bits(), b.objective_ms.to_bits());
        }
    }

    #[test]
    fn lns_delay_matches_the_routed_optimum_on_a_small_instance() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let exact = elpc_delay::solve_routed_ctx(&ctx).unwrap();
        let sol = solve_lns(&ctx, Objective::MinDelay, &LnsConfig::default()).unwrap();
        assert!(sol.objective_ms >= exact.objective_ms - 1e-9);
        assert!(
            (sol.objective_ms - exact.objective_ms).abs() <= 1e-6 * exact.objective_ms,
            "lns missed the optimum on a trivial instance: {} vs {}",
            sol.objective_ms,
            exact.objective_ms
        );
    }

    #[test]
    fn lns_never_ends_worse_than_greedy() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let sol = solve_lns(&ctx, Objective::MinDelay, &LnsConfig::default()).unwrap();
        let g = greedy::solve_min_delay(ctx.instance(), ctx.cost()).unwrap();
        assert!(sol.objective_ms <= g.delay_ms + 1e-9);
        let sol = solve_lns(&ctx, Objective::MaxRate, &LnsConfig::default()).unwrap();
        let g = greedy::solve_max_rate(ctx.instance(), ctx.cost()).unwrap();
        assert!(sol.objective_ms <= g.bottleneck_ms + 1e-9);
    }

    #[test]
    fn rate_solutions_respect_the_distinctness_constraint() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let sol = solve_lns(&ctx, Objective::MaxRate, &LnsConfig::default()).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for &h in &sol.assignment {
            assert!(seen.insert(h), "host {h} reused in a MaxRate mapping");
        }
        assert_eq!(sol.assignment[0], NodeId(0));
        assert_eq!(*sol.assignment.last().unwrap(), NodeId(4));
        let re = routed::routed_bottleneck_ms_ctx(&ctx, &sol.assignment, true).unwrap();
        assert_eq!(re.to_bits(), sol.objective_ms.to_bits());
    }

    #[test]
    fn infeasible_instances_are_reported() {
        let net = k5();
        // 6 modules on 5 nodes: MaxRate is structurally infeasible
        let pipe = Pipeline::from_stages(1e5, &[(1.0, 1e4); 4], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        assert!(matches!(
            solve_lns(&ctx, Objective::MaxRate, &LnsConfig::default()),
            Err(MappingError::Infeasible(_))
        ));
    }

    #[test]
    fn bad_configs_are_rejected() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        for bad in [
            LnsConfig {
                budget: 0,
                ..Default::default()
            },
            LnsConfig {
                min_segment: 0,
                ..Default::default()
            },
            LnsConfig {
                min_segment: 5,
                max_segment: 3,
                ..Default::default()
            },
            LnsConfig {
                reaction: 0.0,
                ..Default::default()
            },
            LnsConfig {
                reaction: 1.5,
                ..Default::default()
            },
        ] {
            assert!(matches!(
                solve_lns(&ctx, Objective::MinDelay, &bad),
                Err(MappingError::BadConfig(_))
            ));
        }
        // a segment range wider than the interior is legal (it clamps)
        assert!(solve_lns(
            &ctx,
            Objective::MinDelay,
            &LnsConfig {
                min_segment: 1,
                max_segment: 100,
                ..Default::default()
            }
        )
        .is_ok());
    }

    #[test]
    fn two_module_pipelines_have_one_assignment() {
        let net = k5();
        let pipe = Pipeline::from_stages(1e5, &[], 1.0).unwrap();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let sol = solve_lns(&ctx, Objective::MinDelay, &LnsConfig::default()).unwrap();
        assert_eq!(sol.assignment, vec![NodeId(0), NodeId(4)]);
    }

    #[test]
    fn tiny_budgets_still_return_the_warm_start() {
        let net = k5();
        let pipe = pipe4();
        let inst = Instance::new(&net, &pipe, NodeId(0), NodeId(4)).unwrap();
        let ctx = SolveContext::new(inst, cost());
        let g = greedy::solve_min_delay(ctx.instance(), ctx.cost()).unwrap();
        let sol = solve_lns(
            &ctx,
            Objective::MinDelay,
            &LnsConfig {
                budget: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(sol.objective_ms <= g.delay_ms + 1e-9);
    }
}
