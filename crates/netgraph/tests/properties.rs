//! Property-based tests for the graph substrate.
//!
//! These check the structural invariants that the mapping algorithms rely
//! on; see the crate docs for the invariant list.

use elpc_netgraph::algo::{
    count_simple_paths_exact_nodes, dijkstra, extract_path, hop_distances, hop_distances_rev,
    widest_paths,
};
use elpc_netgraph::gen::{self, Topology};
use elpc_netgraph::{Graph, NodeId};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a connected random topology with 2..=12 nodes and a feasible
/// link budget, as a (nodes, links, seed) triple.
fn topo_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..=12, any::<u64>()).prop_flat_map(|(n, seed)| {
        let min = n - 1;
        let max = Topology::max_links(n);
        (Just(n), min..=max, Just(seed))
    })
}

fn build(n: usize, links: usize, seed: u64) -> Graph<(), f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let topo = gen::random_connected(n, links, &mut rng).expect("feasible budget");
    // deterministic pseudo-random positive weights derived from endpoints
    topo.into_graph(|_| (), |a, b| 0.5 + ((a * 31 + b * 17) % 97) as f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_topologies_are_connected((n, links, seed) in topo_params()) {
        let g = build(n, links, seed);
        prop_assert!(elpc_netgraph::algo::is_connected(&g));
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), links * 2);
    }

    #[test]
    fn bfs_distance_is_a_lower_bound_for_dijkstra_hops((n, links, seed) in topo_params()) {
        let g = build(n, links, seed);
        let src = NodeId(0);
        let hops = hop_distances(&g, src);
        // Dijkstra with unit costs must equal BFS distances exactly
        let sp = dijkstra(&g, src, |_, _| 1.0);
        for v in g.node_ids() {
            match hops[v.index()] {
                Some(h) => prop_assert!((sp.dist[v.index()] - h as f64).abs() < 1e-9),
                None => prop_assert!(sp.dist[v.index()].is_infinite()),
            }
        }
    }

    #[test]
    fn forward_and_reverse_hops_agree_on_symmetric_graphs((n, links, seed) in topo_params()) {
        let g = build(n, links, seed);
        let t = NodeId((n as u32) - 1);
        prop_assert_eq!(hop_distances(&g, t), hop_distances_rev(&g, t));
    }

    #[test]
    fn dijkstra_paths_have_consistent_costs((n, links, seed) in topo_params()) {
        let g = build(n, links, seed);
        let src = NodeId(0);
        let sp = dijkstra(&g, src, |_, e| e.payload);
        for v in g.node_ids() {
            if let Some(path) = extract_path(&sp, src, v) {
                // recompute the path cost by summing the cheapest edge
                // between consecutive nodes; it can never beat sp.dist
                let mut cost = 0.0;
                for w in path.windows(2) {
                    let best = g
                        .neighbors(w[0])
                        .filter(|nb| nb.node == w[1])
                        .map(|nb| g.edge(nb.edge).unwrap().payload)
                        .fold(f64::INFINITY, f64::min);
                    cost += best;
                }
                prop_assert!(cost <= sp.dist[v.index()] + 1e-9);
            }
        }
    }

    #[test]
    fn widest_path_width_upper_bounds_every_exact_hop_path((n, links, seed) in topo_params()) {
        let g = build(n, links, seed);
        let (s, t) = (NodeId(0), NodeId((n as u32) - 1));
        let wp = widest_paths(&g, s, |_, e| e.payload);
        let bound = wp.width[t.index()];
        // every simple path's bottleneck is <= the unconstrained widest width
        for k in 2..=n.min(6) {
            elpc_netgraph::algo::for_each_simple_path_exact_nodes(&g, s, t, k, |p| {
                let mut bottleneck = f64::INFINITY;
                for w in p.windows(2) {
                    let best = g
                        .neighbors(w[0])
                        .filter(|nb| nb.node == w[1])
                        .map(|nb| g.edge(nb.edge).unwrap().payload)
                        .fold(0.0, f64::max);
                    bottleneck = bottleneck.min(best);
                }
                assert!(bottleneck <= bound + 1e-9);
                elpc_netgraph::algo::PathVisit::Continue
            });
        }
    }

    #[test]
    fn exact_node_paths_never_exceed_node_count((n, links, seed) in topo_params()) {
        let g = build(n, links, seed);
        let (s, t) = (NodeId(0), NodeId((n as u32) - 1));
        // asking for more nodes than the graph has is always zero
        prop_assert_eq!(count_simple_paths_exact_nodes(&g, s, t, n + 1, 1000), 0);
    }

    #[test]
    fn topology_serialization_round_trips((n, links, seed) in topo_params()) {
        let g = build(n, links, seed);
        let json = serde_json::to_string(&g).unwrap();
        let g2: Graph<(), f64> = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(g.node_count(), g2.node_count());
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        for (id, e) in g.edges() {
            let e2 = g2.edge(id).unwrap();
            prop_assert_eq!(e.src, e2.src);
            prop_assert_eq!(e.dst, e2.dst);
            prop_assert_eq!(e.payload, e2.payload);
        }
    }
}
