//! # elpc-netgraph — graph substrate for the ELPC reproduction
//!
//! The IPDPS 2008 paper maps computing pipelines onto *arbitrary* network
//! topologies, so every algorithm in the stack sits on top of a directed
//! weighted graph. This crate provides that substrate from scratch:
//!
//! * [`Graph`] — an adjacency-list directed multigraph generic over node and
//!   edge payloads, with helpers for the undirected (symmetric-link) networks
//!   the paper uses.
//! * [`algo`] — breadth-first hop distances, Dijkstra shortest paths, widest
//!   (maximum-bottleneck) paths, and exact-hop simple-path enumeration. The
//!   last of these is the exact counterpart of the paper's NP-complete
//!   "exact n-hop widest path" problem (§3.1.2) and is used to measure the
//!   ELPC-rate heuristic's optimality gap.
//! * [`csr`] — flat compressed-sparse-row snapshots of a built graph plus
//!   cache-friendly SSSP kernels with reusable scratch, bit-identical to
//!   the [`algo`] kernels. This is what multi-source (metric-closure)
//!   workloads run on past a few hundred nodes.
//! * [`gen`] — seeded topology generators covering the "essentially
//!   arbitrary" networks of §4.1: random connected, Waxman geometric,
//!   ring-with-chords, complete, line, and star graphs, plus the
//!   scale-free (Barabási–Albert) and small-world (Watts–Strogatz)
//!   families that the 10⁴-node scaling experiments draw from.
//! * [`dot`] — Graphviz DOT export used by the Fig. 3 / Fig. 4 path
//!   illustrations.
//!
//! ## Invariants enforced by this crate's tests
//!
//! * Every generated topology is connected (spanning-tree patching).
//! * `add_undirected_edge` always creates a forward/reverse pair whose ids
//!   differ by exactly one, so either direction can be recovered in O(1).
//! * BFS hop distances lower-bound every simple path length, which the
//!   exact-hop enumerator relies on for pruning.
//! * Dijkstra and widest-path results agree with exhaustive enumeration on
//!   small graphs (property-tested).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod csr;
pub mod dot;
pub mod error;
pub mod fnv;
pub mod gen;
mod graph;
mod ids;

pub use error::GraphError;
pub use graph::{Edge, Graph, Neighbor};
pub use ids::{EdgeId, NodeId};

/// Convenient result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
