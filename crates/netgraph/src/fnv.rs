//! The workspace's one FNV-1a implementation.
//!
//! Several layers need a small, deterministic, dependency-free structural
//! hash: `elpc_netsim::Network::fingerprint`, the metric-closure shard
//! selector, and the `ClosureBank` topology key. They all mix through this
//! hasher so the constants and byte order live in exactly one place.
//!
//! FNV-1a is a non-cryptographic hash: fine for cache keys and shard
//! spreading, unsuitable for anything adversarial.

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;

    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Mixes one `u64` (little-endian byte order), returning `self` for
    /// chaining.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Mixes an `f64` by its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Mixes a `usize` (as `u64`).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Fnv1a::new();
        a.write_u64(1).write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(1).write_u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv1a::new();
        c.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn every_input_bit_matters() {
        let base = {
            let mut h = Fnv1a::new();
            h.write_f64(1.0);
            h.finish()
        };
        let tweaked = {
            let mut h = Fnv1a::new();
            h.write_f64(1.0 + f64::EPSILON);
            h.finish()
        };
        assert_ne!(base, tweaked);
        assert_ne!(base, Fnv1a::new().finish());
    }
}
