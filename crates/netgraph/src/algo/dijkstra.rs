//! Dijkstra single-source shortest paths with a caller-supplied edge cost.
//!
//! Used by the Greedy baseline (destination-aware relay routing) and by the
//! transport-time heuristics: the cost closure lets the same routine compute
//! hop counts, pure transport time `m/b + d`, or any other additive metric
//! without duplicating the traversal.

use crate::{Edge, EdgeId, Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a Dijkstra run: per-node distance and predecessor links.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// `dist[v]` is the minimum additive cost from the source, `f64::INFINITY`
    /// when unreachable.
    pub dist: Vec<f64>,
    /// `prev[v] = Some((u, e))` means the best path enters `v` via edge `e`
    /// from `u`. The source and unreachable nodes have `None`.
    pub prev: Vec<Option<(NodeId, EdgeId)>>,
}

/// Bitset over directed edge ids marking the edges a shortest-path tree
/// traverses — the union of its `prev` links, one bit per directed edge.
///
/// Built once per tree by [`ShortestPaths::tree_edges`], it answers "does
/// this tree route through edge `e`?" in O(1), which is what incremental
/// (churn) maintenance layers need to decide whether a perturbed edge
/// invalidates a cached tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeEdges {
    words: Vec<u64>,
    count: usize,
}

impl TreeEdges {
    /// True when the tree traverses directed edge `e`. Out-of-range ids
    /// answer `false`.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        let i = e.index();
        match self.words.get(i / 64) {
            Some(w) => (w >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Number of tree edges (= reachable non-source nodes).
    pub fn count(&self) -> usize {
        self.count
    }
}

impl ShortestPaths {
    /// The touched-edge bitset of this tree: one bit per directed edge id
    /// (`edge_count` total), set when some node's `prev` link enters
    /// through that edge.
    ///
    /// A directed edge `(u, v)` can only ever be the predecessor link of
    /// `v`, so membership here is equivalent to `prev[v] == Some((u, e))`
    /// — but the bitset costs O(k + E/64) once and O(1) per query, which
    /// is the right shape when one tree is probed against many perturbed
    /// edges.
    pub fn tree_edges(&self, edge_count: usize) -> TreeEdges {
        let mut words = vec![0u64; edge_count.div_ceil(64)];
        let mut count = 0usize;
        for link in self.prev.iter().flatten() {
            let i = link.1.index();
            debug_assert!(i < edge_count, "prev edge id out of range");
            words[i / 64] |= 1u64 << (i % 64);
            count += 1;
        }
        TreeEdges { words, count }
    }
}

/// Max-heap entry ordered by *smallest* distance first.
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want min-dist on top
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("edge costs must not be NaN")
    }
}

/// Runs Dijkstra from `src`; `cost` maps each directed edge to a
/// non-negative, non-NaN additive cost. `+∞` is allowed and means "edge
/// removed": an infinite relaxation can never beat any retained distance,
/// so such edges are simply never taken (this is how failed links — the
/// `bw = 0` sentinel — route around).
///
/// # Panics
/// Panics (in debug builds) if `cost` returns a negative or NaN value — the
/// algorithm's correctness contract.
pub fn dijkstra<N, E>(
    g: &Graph<N, E>,
    src: NodeId,
    mut cost: impl FnMut(EdgeId, &Edge<E>) -> f64,
) -> ShortestPaths {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    if g.check_node(src).is_err() {
        return ShortestPaths { dist, prev };
    }
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u.index()] {
            continue; // stale entry
        }
        for (nb, e) in g.out_edges(u) {
            let w = cost(nb.edge, e);
            debug_assert!(
                w >= 0.0 && !w.is_nan(),
                "Dijkstra requires non-negative non-NaN costs, got {w}"
            );
            let nd = d + w;
            if nd < dist[nb.node.index()] {
                dist[nb.node.index()] = nd;
                prev[nb.node.index()] = Some((u, nb.edge));
                heap.push(HeapEntry {
                    dist: nd,
                    node: nb.node,
                });
            }
        }
    }
    ShortestPaths { dist, prev }
}

/// Reconstructs the node sequence from `src` to `dst` out of predecessor
/// links, or `None` when `dst` is unreachable.
pub fn extract_path(sp: &ShortestPaths, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    if dst.index() >= sp.dist.len() || sp.dist[dst.index()].is_infinite() {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        let (p, _) = sp.prev[cur.index()]?;
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// Weighted test graph:
    /// 0 --1.0-- 1 --1.0-- 3
    ///  \                 /
    ///   --3.0-- 2 --0.5--
    fn diamond() -> (Graph<(), f64>, Vec<NodeId>) {
        let mut g = Graph::new();
        let ns: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_undirected_edge(ns[0], ns[1], 1.0).unwrap();
        g.add_undirected_edge(ns[1], ns[3], 1.0).unwrap();
        g.add_undirected_edge(ns[0], ns[2], 3.0).unwrap();
        g.add_undirected_edge(ns[2], ns[3], 0.5).unwrap();
        (g, ns)
    }

    #[test]
    fn finds_cheapest_route() {
        let (g, ns) = diamond();
        let sp = dijkstra(&g, ns[0], |_, e| e.payload);
        assert_eq!(sp.dist[3], 2.0); // via node 1
        let path = extract_path(&sp, ns[0], ns[3]).unwrap();
        assert_eq!(path, vec![ns[0], ns[1], ns[3]]);
    }

    #[test]
    fn cost_closure_switches_the_metric() {
        let (g, ns) = diamond();
        // hop metric: both routes are 2 hops, dist = 2
        let sp = dijkstra(&g, ns[0], |_, _| 1.0);
        assert_eq!(sp.dist[3], 2.0);
        // inverted weights: 0-1-3 costs 1+1=2, 0-2-3 costs 1/3+2≈2.33
        let sp = dijkstra(&g, ns[0], |_, e| 1.0 / e.payload);
        assert!((sp.dist[3] - 2.0).abs() < 1e-9);
        let path = extract_path(&sp, ns[0], ns[3]).unwrap();
        assert_eq!(path, vec![ns[0], ns[1], ns[3]]);
    }

    #[test]
    fn unreachable_nodes_have_infinite_distance_and_no_path() {
        let (mut g, ns) = diamond();
        let lonely = g.add_node(());
        let sp = dijkstra(&g, ns[0], |_, e| e.payload);
        assert!(sp.dist[lonely.index()].is_infinite());
        assert_eq!(extract_path(&sp, ns[0], lonely), None);
    }

    #[test]
    fn source_distance_is_zero_and_path_is_singleton() {
        let (g, ns) = diamond();
        let sp = dijkstra(&g, ns[0], |_, e| e.payload);
        assert_eq!(sp.dist[0], 0.0);
        assert_eq!(extract_path(&sp, ns[0], ns[0]).unwrap(), vec![ns[0]]);
    }

    #[test]
    fn out_of_bounds_source_returns_all_unreachable() {
        let (g, _) = diamond();
        let sp = dijkstra(&g, NodeId(50), |_, e| e.payload);
        assert!(sp.dist.iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn directed_edges_are_respected() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0).unwrap(); // one-way only
        let sp = dijkstra(&g, b, |_, e| e.payload);
        assert!(sp.dist[a.index()].is_infinite());
    }

    #[test]
    fn tree_edges_marks_exactly_the_prev_links() {
        let (g, ns) = diamond();
        let sp = dijkstra(&g, ns[0], |_, e| e.payload);
        let bits = sp.tree_edges(g.edge_count());
        // one tree edge per reachable non-source node
        assert_eq!(bits.count(), 3);
        let mut marked = 0;
        for (id, e) in g.edges() {
            let used = sp.prev[e.dst.index()] == Some((e.src, id));
            assert_eq!(
                bits.contains(id),
                used,
                "edge {id:?} bitset/prev disagreement"
            );
            if used {
                marked += 1;
            }
        }
        assert_eq!(marked, bits.count());
        // out-of-range probes answer false, never panic
        assert!(!bits.contains(EdgeId::from_index(g.edge_count() + 64)));
    }

    #[test]
    fn tree_edges_of_an_unreachable_forest_is_empty() {
        let (g, _) = diamond();
        let sp = dijkstra(&g, NodeId(50), |_, e| e.payload);
        let bits = sp.tree_edges(g.edge_count());
        assert_eq!(bits.count(), 0);
        assert!((0..g.edge_count()).all(|i| !bits.contains(EdgeId::from_index(i))));
    }

    #[test]
    fn dijkstra_matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for _ in 0..25 {
            let n = rng.gen_range(3..8);
            let mut g: Graph<(), f64> = Graph::new();
            let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.6) {
                        g.add_undirected_edge(ns[i], ns[j], rng.gen_range(0.1..5.0))
                            .unwrap();
                    }
                }
            }
            let sp = dijkstra(&g, ns[0], |_, e| e.payload);
            // brute force: Bellman-Ford style relaxation until fixpoint
            let mut bf = vec![f64::INFINITY; n];
            bf[0] = 0.0;
            for _ in 0..n {
                for (_, e) in g.edges() {
                    let cand = bf[e.src.index()] + e.payload;
                    if cand < bf[e.dst.index()] {
                        bf[e.dst.index()] = cand;
                    }
                }
            }
            for v in 0..n {
                let (a, b) = (sp.dist[v], bf[v]);
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                    "mismatch at {v}: dijkstra={a} brute={b}"
                );
            }
        }
    }
}
