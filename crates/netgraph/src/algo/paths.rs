//! Exact-size simple-path enumeration.
//!
//! The paper proves (§3.1.2) that finding the widest *exact n-hop* path is
//! NP-complete, and its ELPC-rate algorithm is therefore a heuristic. To
//! quantify that heuristic's optimality gap (experiment E8 in DESIGN.md) we
//! need ground truth on small instances, which this module provides by
//! depth-first enumeration of all simple paths with an exact node count,
//! pruned by reverse-BFS hop distances.
//!
//! Enumeration is exponential in the worst case by necessity; callers bound
//! the work with the `limit` parameter and instance sizes.

use super::bfs::hop_distances_rev;
use crate::{Graph, NodeId};

/// Outcome of a single path visit, controlling enumeration flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathVisit {
    /// Keep enumerating.
    Continue,
    /// Stop the whole enumeration (e.g. a good-enough path was found).
    Stop,
}

/// Calls `visit` for every simple path from `src` to `dst` containing
/// exactly `nodes` nodes (i.e. `nodes - 1` hops). Paths are reported as node
/// slices in travel order. Returns the number of paths visited.
///
/// `nodes == 1` matches only the trivial path when `src == dst`.
///
/// Pruning: a branch at node `u` with `r` nodes still to place is abandoned
/// when the hop distance from `u` to `dst` exceeds `r - 1`, which is
/// admissible because BFS distance lower-bounds every simple path length.
pub fn for_each_simple_path_exact_nodes<N, E>(
    g: &Graph<N, E>,
    src: NodeId,
    dst: NodeId,
    nodes: usize,
    mut visit: impl FnMut(&[NodeId]) -> PathVisit,
) -> usize {
    if g.check_node(src).is_err() || g.check_node(dst).is_err() || nodes == 0 {
        return 0;
    }
    if nodes == 1 {
        if src == dst && visit(&[src]) == PathVisit::Stop {
            return 1;
        }
        return usize::from(src == dst);
    }
    if src == dst {
        // a simple path with >= 2 nodes cannot start and end at the same node
        return 0;
    }
    let dist_to_dst = hop_distances_rev(g, dst);
    let mut on_path = vec![false; g.node_count()];
    let mut path = Vec::with_capacity(nodes);
    path.push(src);
    on_path[src.index()] = true;
    let mut count = 0usize;
    dfs(
        g,
        dst,
        nodes,
        &dist_to_dst,
        &mut on_path,
        &mut path,
        &mut count,
        &mut visit,
    );
    count
}

#[allow(clippy::too_many_arguments)]
fn dfs<N, E>(
    g: &Graph<N, E>,
    dst: NodeId,
    nodes: usize,
    dist_to_dst: &[Option<u32>],
    on_path: &mut [bool],
    path: &mut Vec<NodeId>,
    count: &mut usize,
    visit: &mut impl FnMut(&[NodeId]) -> PathVisit,
) -> PathVisit {
    let u = *path.last().expect("path never empty during DFS");
    if path.len() == nodes {
        if u == dst {
            *count += 1;
            return visit(path);
        }
        return PathVisit::Continue;
    }
    let remaining_hops = (nodes - path.len()) as u32;
    for nb in g.neighbors(u) {
        let v = nb.node;
        if on_path[v.index()] {
            continue;
        }
        // admissible prune: v must still be able to reach dst in the budget
        match dist_to_dst[v.index()] {
            Some(d) if d < remaining_hops => {}
            _ => continue,
        }
        // dst may only appear as the final node
        if v == dst && path.len() + 1 != nodes {
            continue;
        }
        on_path[v.index()] = true;
        path.push(v);
        let flow = dfs(g, dst, nodes, dist_to_dst, on_path, path, count, visit);
        path.pop();
        on_path[v.index()] = false;
        if flow == PathVisit::Stop {
            return PathVisit::Stop;
        }
    }
    PathVisit::Continue
}

/// Collects up to `limit` simple paths with exactly `nodes` nodes.
pub fn all_simple_paths_exact_nodes<N, E>(
    g: &Graph<N, E>,
    src: NodeId,
    dst: NodeId,
    nodes: usize,
    limit: usize,
) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    for_each_simple_path_exact_nodes(g, src, dst, nodes, |p| {
        out.push(p.to_vec());
        if out.len() >= limit {
            PathVisit::Stop
        } else {
            PathVisit::Continue
        }
    });
    out
}

/// Counts simple paths with exactly `nodes` nodes, stopping at `cap`.
pub fn count_simple_paths_exact_nodes<N, E>(
    g: &Graph<N, E>,
    src: NodeId,
    dst: NodeId,
    nodes: usize,
    cap: usize,
) -> usize {
    let mut seen = 0usize;
    for_each_simple_path_exact_nodes(g, src, dst, nodes, |_| {
        seen += 1;
        if seen >= cap {
            PathVisit::Stop
        } else {
            PathVisit::Continue
        }
    });
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// K4 complete undirected graph.
    fn k4() -> (Graph<(), ()>, Vec<NodeId>) {
        let mut g = Graph::new();
        let ns: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_undirected_edge(ns[i], ns[j], ()).unwrap();
            }
        }
        (g, ns)
    }

    #[test]
    fn k4_path_counts_match_combinatorics() {
        let (g, ns) = k4();
        // paths 0→3 with exactly 2 nodes: the direct edge only
        assert_eq!(count_simple_paths_exact_nodes(&g, ns[0], ns[3], 2, 100), 1);
        // 3 nodes: 0-x-3 for x in {1,2} → 2 paths
        assert_eq!(count_simple_paths_exact_nodes(&g, ns[0], ns[3], 3, 100), 2);
        // 4 nodes: 0-a-b-3 with {a,b} a permutation of {1,2} → 2 paths
        assert_eq!(count_simple_paths_exact_nodes(&g, ns[0], ns[3], 4, 100), 2);
        // 5 nodes: impossible in a 4-node graph
        assert_eq!(count_simple_paths_exact_nodes(&g, ns[0], ns[3], 5, 100), 0);
    }

    #[test]
    fn paths_are_simple_and_have_exact_length() {
        let (g, ns) = k4();
        for p in all_simple_paths_exact_nodes(&g, ns[0], ns[3], 4, 100) {
            assert_eq!(p.len(), 4);
            assert_eq!(p.first(), Some(&ns[0]));
            assert_eq!(p.last(), Some(&ns[3]));
            let mut sorted = p.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "path revisits a node: {p:?}");
        }
    }

    #[test]
    fn trivial_single_node_path() {
        let (g, ns) = k4();
        assert_eq!(count_simple_paths_exact_nodes(&g, ns[0], ns[0], 1, 10), 1);
        // src == dst with more than one node: impossible for simple paths
        assert_eq!(count_simple_paths_exact_nodes(&g, ns[0], ns[0], 3, 10), 0);
    }

    #[test]
    fn limit_short_circuits_enumeration() {
        let (g, ns) = k4();
        let got = all_simple_paths_exact_nodes(&g, ns[0], ns[3], 3, 1);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn disconnected_destination_yields_no_paths() {
        let (mut g, ns) = k4();
        let lonely = g.add_node(());
        assert_eq!(count_simple_paths_exact_nodes(&g, ns[0], lonely, 3, 10), 0);
    }

    #[test]
    fn line_graph_has_exactly_one_maximal_path() {
        let mut g: Graph<(), ()> = Graph::new();
        let ns: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        for w in ns.windows(2) {
            g.add_undirected_edge(w[0], w[1], ()).unwrap();
        }
        assert_eq!(count_simple_paths_exact_nodes(&g, ns[0], ns[4], 5, 10), 1);
        // shorter exact sizes are impossible on a line
        for k in 1..5 {
            assert_eq!(count_simple_paths_exact_nodes(&g, ns[0], ns[4], k, 10), 0);
        }
    }

    #[test]
    fn directed_cycles_do_not_trap_the_enumerator() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, a, ()).unwrap(); // 2-cycle
        g.add_edge(b, c, ()).unwrap();
        assert_eq!(count_simple_paths_exact_nodes(&g, a, c, 3, 10), 1);
        assert_eq!(count_simple_paths_exact_nodes(&g, a, c, 4, 10), 0);
    }

    #[test]
    fn enumeration_agrees_with_unpruned_reference_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for trial in 0..20 {
            let n = rng.gen_range(3..7);
            let mut g: Graph<(), ()> = Graph::new();
            let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.5) {
                        g.add_undirected_edge(ns[i], ns[j], ()).unwrap();
                    }
                }
            }
            for k in 1..=n {
                let fast = count_simple_paths_exact_nodes(&g, ns[0], ns[n - 1], k, 10_000);
                let slow = reference_count(&g, ns[0], ns[n - 1], k);
                assert_eq!(fast, slow, "trial {trial}, k={k}");
            }
        }
    }

    /// Unpruned exponential reference enumerator.
    fn reference_count(g: &Graph<(), ()>, src: NodeId, dst: NodeId, nodes: usize) -> usize {
        fn go(
            g: &Graph<(), ()>,
            cur: NodeId,
            dst: NodeId,
            left: usize,
            used: &mut Vec<NodeId>,
        ) -> usize {
            if left == 0 {
                return usize::from(cur == dst);
            }
            let mut total = 0;
            for nb in g.neighbors(cur) {
                if used.contains(&nb.node) {
                    continue;
                }
                used.push(nb.node);
                total += go(g, nb.node, dst, left - 1, used);
                used.pop();
            }
            total
        }
        if nodes == 0 {
            return 0;
        }
        let mut used = vec![src];
        go(g, src, dst, nodes - 1, &mut used)
    }
}
