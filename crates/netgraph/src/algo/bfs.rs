//! Breadth-first search: hop distances, reachability, connectivity.
//!
//! Hop distances serve two roles in the reproduction:
//! 1. Feasibility screening — a pipeline of `n` modules mapped without node
//!    reuse needs a simple path of exactly `n` nodes, so
//!    `hops(vs → vd) ≤ n - 1` is a necessary condition (§4.3 discusses the
//!    infeasible extremes).
//! 2. Pruning — the exact-hop path enumerator cuts branches whose remaining
//!    budget is below the hop distance to the destination.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Hop distance (minimum number of edges) from `src` to every node, following
/// edges forward. Unreachable nodes get `None`.
pub fn hop_distances<N, E>(g: &Graph<N, E>, src: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.node_count()];
    if g.check_node(src).is_err() {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[src.index()] = Some(0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for nb in g.neighbors(u) {
            let slot = &mut dist[nb.node.index()];
            if slot.is_none() {
                *slot = Some(du + 1);
                queue.push_back(nb.node);
            }
        }
    }
    dist
}

/// Hop distance from every node *to* `dst`, following edges backward.
///
/// Built by one pass over the edge list to form reverse adjacency, then a
/// plain BFS; used as the admissible pruning heuristic in
/// [`super::for_each_simple_path_exact_nodes`].
pub fn hop_distances_rev<N, E>(g: &Graph<N, E>, dst: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.node_count()];
    if g.check_node(dst).is_err() {
        return dist;
    }
    let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); g.node_count()];
    for (_, e) in g.edges() {
        rev[e.dst.index()].push(e.src);
    }
    let mut queue = VecDeque::new();
    dist[dst.index()] = Some(0);
    queue.push_back(dst);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &p in &rev[u.index()] {
            let slot = &mut dist[p.index()];
            if slot.is_none() {
                *slot = Some(du + 1);
                queue.push_back(p);
            }
        }
    }
    dist
}

/// Number of nodes reachable from `src` (including `src` itself).
pub fn reachable_count<N, E>(g: &Graph<N, E>, src: NodeId) -> usize {
    hop_distances(g, src).iter().flatten().count()
}

/// True when every node is reachable from node 0.
///
/// For the symmetric (undirected) networks of the paper this is exactly
/// graph connectivity; for directed graphs it is "rooted at node 0"
/// reachability, which is what the topology generators guarantee.
pub fn is_connected<N, E>(g: &Graph<N, E>) -> bool {
    match g.node_count() {
        0 => true,
        _ => reachable_count(g, NodeId(0)) == g.node_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// A 5-node path graph 0-1-2-3-4 (undirected).
    fn path5() -> Graph<(), ()> {
        let mut g = Graph::new();
        let ns: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        for w in ns.windows(2) {
            g.add_undirected_edge(w[0], w[1], ()).unwrap();
        }
        g
    }

    #[test]
    fn hop_distances_on_a_path_graph_are_positions() {
        let g = path5();
        let d = hop_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn hop_distances_mark_unreachable_components() {
        let mut g = path5();
        let isolated = g.add_node(());
        let d = hop_distances(&g, NodeId(0));
        assert_eq!(d[isolated.index()], None);
        assert!(!is_connected(&g));
    }

    #[test]
    fn reverse_distances_equal_forward_on_symmetric_graphs() {
        let g = path5();
        let fwd = hop_distances(&g, NodeId(4));
        let rev = hop_distances_rev(&g, NodeId(4));
        assert_eq!(fwd, rev);
    }

    #[test]
    fn reverse_distances_respect_direction() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        let to_c = hop_distances_rev(&g, c);
        assert_eq!(to_c, vec![Some(2), Some(1), Some(0)]);
        // nothing reaches `a` going forward, so distances *to* a are only a itself
        let to_a = hop_distances_rev(&g, a);
        assert_eq!(to_a, vec![Some(0), None, None]);
    }

    #[test]
    fn empty_and_singleton_graphs_are_connected() {
        let g: Graph<(), ()> = Graph::new();
        assert!(is_connected(&g));
        let mut g: Graph<(), ()> = Graph::new();
        g.add_node(());
        assert!(is_connected(&g));
        assert_eq!(reachable_count(&g, NodeId(0)), 1);
    }

    #[test]
    fn out_of_bounds_source_yields_all_none() {
        let g = path5();
        let d = hop_distances(&g, NodeId(99));
        assert!(d.iter().all(Option::is_none));
        assert_eq!(reachable_count(&g, NodeId(99)), 0);
    }

    #[test]
    fn bfs_takes_shortcuts_over_longer_routes() {
        // square with a diagonal: 0-1, 1-2, 2-3, 3-0, plus 0-2
        let mut g: Graph<(), ()> = Graph::new();
        let ns: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_undirected_edge(ns[0], ns[1], ()).unwrap();
        g.add_undirected_edge(ns[1], ns[2], ()).unwrap();
        g.add_undirected_edge(ns[2], ns[3], ()).unwrap();
        g.add_undirected_edge(ns[3], ns[0], ()).unwrap();
        g.add_undirected_edge(ns[0], ns[2], ()).unwrap();
        let d = hop_distances(&g, ns[0]);
        assert_eq!(d[2], Some(1)); // via diagonal, not 2 hops
    }
}
