//! Widest-path (maximum-bottleneck) computation.
//!
//! The streaming objective of the paper (Eq. 2) is governed by the smallest
//! capacity along the chosen route. The *unconstrained* widest path is
//! polynomial (this module, a Dijkstra variant maximizing the minimum edge
//! width); the paper's *exact-n-hop* variant is NP-complete and handled by
//! the exhaustive enumerator plus the ELPC-rate heuristic in `elpc-mapping`.
//! The unconstrained solution is still useful: it is an upper bound on any
//! hop-constrained widest path, which the exact solver uses for pruning.

use crate::{Edge, EdgeId, Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a widest-path run.
#[derive(Debug, Clone)]
pub struct WidestPaths {
    /// `width[v]` is the best achievable bottleneck width from the source to
    /// `v` (`f64::INFINITY` for the source itself, `0.0` when unreachable).
    pub width: Vec<f64>,
    /// Predecessor links mirroring [`super::ShortestPaths::prev`].
    pub prev: Vec<Option<(NodeId, EdgeId)>>,
}

struct HeapEntry {
    width: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // max-heap on width: widest frontier first
        self.width
            .partial_cmp(&other.width)
            .expect("edge widths must not be NaN")
    }
}

/// Computes the maximum-bottleneck width from `src` to every node.
///
/// `width_of` maps each directed edge to its width (for networks: link
/// bandwidth); widths must be non-negative and non-NaN.
pub fn widest_paths<N, E>(
    g: &Graph<N, E>,
    src: NodeId,
    mut width_of: impl FnMut(EdgeId, &Edge<E>) -> f64,
) -> WidestPaths {
    let n = g.node_count();
    let mut width = vec![0.0_f64; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    if g.check_node(src).is_err() {
        return WidestPaths { width, prev };
    }
    width[src.index()] = f64::INFINITY;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        width: f64::INFINITY,
        node: src,
    });
    while let Some(HeapEntry { width: w, node: u }) = heap.pop() {
        if w < width[u.index()] {
            continue; // stale
        }
        for (nb, e) in g.out_edges(u) {
            let ew = width_of(nb.edge, e);
            debug_assert!(ew >= 0.0 && !ew.is_nan(), "invalid edge width {ew}");
            let nw = w.min(ew);
            if nw > width[nb.node.index()] {
                width[nb.node.index()] = nw;
                prev[nb.node.index()] = Some((u, nb.edge));
                heap.push(HeapEntry {
                    width: nw,
                    node: nb.node,
                });
            }
        }
    }
    WidestPaths { width, prev }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// Two routes 0→3: narrow-fast (min width 2) and wide (min width 5).
    fn two_routes() -> (Graph<(), f64>, Vec<NodeId>) {
        let mut g = Graph::new();
        let ns: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_undirected_edge(ns[0], ns[1], 10.0).unwrap();
        g.add_undirected_edge(ns[1], ns[3], 2.0).unwrap();
        g.add_undirected_edge(ns[0], ns[2], 5.0).unwrap();
        g.add_undirected_edge(ns[2], ns[3], 6.0).unwrap();
        (g, ns)
    }

    #[test]
    fn picks_the_route_with_larger_bottleneck() {
        let (g, ns) = two_routes();
        let wp = widest_paths(&g, ns[0], |_, e| e.payload);
        assert_eq!(wp.width[3], 5.0);
        // path reconstruction goes through node 2
        assert_eq!(wp.prev[3].unwrap().0, ns[2]);
    }

    #[test]
    fn source_width_is_infinite() {
        let (g, ns) = two_routes();
        let wp = widest_paths(&g, ns[0], |_, e| e.payload);
        assert!(wp.width[0].is_infinite());
    }

    #[test]
    fn unreachable_nodes_have_zero_width() {
        let (mut g, ns) = two_routes();
        let lonely = g.add_node(());
        let wp = widest_paths(&g, ns[0], |_, e| e.payload);
        assert_eq!(wp.width[lonely.index()], 0.0);
        assert!(wp.prev[lonely.index()].is_none());
    }

    #[test]
    fn single_edge_width_is_the_edge_width() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 3.5).unwrap();
        let wp = widest_paths(&g, a, |_, e| e.payload);
        assert_eq!(wp.width[b.index()], 3.5);
    }

    #[test]
    fn widest_matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for _ in 0..25 {
            let n = rng.gen_range(3..8);
            let mut g: Graph<(), f64> = Graph::new();
            let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.6) {
                        g.add_undirected_edge(ns[i], ns[j], rng.gen_range(0.1..5.0))
                            .unwrap();
                    }
                }
            }
            let wp = widest_paths(&g, ns[0], |_, e| e.payload);
            // brute force: max-min relaxation until fixpoint
            let mut bf = vec![0.0_f64; n];
            bf[0] = f64::INFINITY;
            for _ in 0..n {
                for (_, e) in g.edges() {
                    let cand = bf[e.src.index()].min(e.payload);
                    if cand > bf[e.dst.index()] {
                        bf[e.dst.index()] = cand;
                    }
                }
            }
            for v in 0..n {
                assert!(
                    (wp.width[v] - bf[v]).abs() < 1e-9
                        || (wp.width[v].is_infinite() && bf[v].is_infinite()),
                    "mismatch at {v}: widest={} brute={}",
                    wp.width[v],
                    bf[v]
                );
            }
        }
    }

    #[test]
    fn parallel_edges_use_the_better_one() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0).unwrap();
        g.add_edge(a, b, 9.0).unwrap();
        let wp = widest_paths(&g, a, |_, e| e.payload);
        assert_eq!(wp.width[b.index()], 9.0);
    }
}
