//! Graph algorithms used by the pipeline-mapping stack.
//!
//! Everything here is deterministic and allocation-conscious; the ELPC
//! dynamic programs call these routines inside experiment sweeps over
//! thousands of instances.

mod bfs;
mod dijkstra;
mod paths;
mod widest;

pub use bfs::{hop_distances, hop_distances_rev, is_connected, reachable_count};
pub use dijkstra::{dijkstra, extract_path, ShortestPaths, TreeEdges};
pub use paths::{
    all_simple_paths_exact_nodes, count_simple_paths_exact_nodes, for_each_simple_path_exact_nodes,
    PathVisit,
};
pub use widest::{widest_paths, WidestPaths};
