//! Strongly-typed index newtypes for graph nodes and edges.
//!
//! Indices are `u32` internally (per the perf guide: smaller indices shrink
//! hot structures; a network with more than 4 billion nodes is out of scope)
//! and convert to `usize` at use sites.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (vertex) within a [`crate::Graph`].
///
/// Node ids are dense: the `i`-th added node has id `i`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a directed edge within a [`crate::Graph`].
///
/// Edge ids are dense in insertion order. For edges created by
/// [`crate::Graph::add_undirected_edge`], the reverse direction is always
/// `EdgeId(id ^ 1)`-adjacent (ids differ by one).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index into node-indexed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32 range"))
    }
}

impl EdgeId {
    /// The edge id as a `usize` index into edge-indexed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        EdgeId(u32::try_from(i).expect("edge index exceeds u32 range"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        for i in [0usize, 1, 7, 1024, u32::MAX as usize] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn edge_id_round_trips_through_index() {
        for i in [0usize, 1, 9, 4096] {
            assert_eq!(EdgeId::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32 range")]
    fn node_id_from_oversized_index_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn display_is_bare_number_for_interop_with_paper_tables() {
        assert_eq!(NodeId(5).to_string(), "5");
        assert_eq!(EdgeId(12).to_string(), "12");
    }

    #[test]
    fn debug_is_prefixed_for_log_readability() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", EdgeId(8)), "e8");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }

    #[test]
    fn serde_round_trip() {
        let n: NodeId = serde_json::from_str(&serde_json::to_string(&NodeId(42)).unwrap()).unwrap();
        assert_eq!(n, NodeId(42));
        let e: EdgeId = serde_json::from_str(&serde_json::to_string(&EdgeId(7)).unwrap()).unwrap();
        assert_eq!(e, EdgeId(7));
    }
}
