//! Error type shared by graph construction and algorithms.

use crate::{EdgeId, NodeId};
use std::fmt;

/// Errors produced by graph construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced a node that does not exist.
    NodeOutOfBounds {
        /// The offending id.
        node: NodeId,
        /// Number of nodes actually present.
        len: usize,
    },
    /// An edge id referenced an edge that does not exist.
    EdgeOutOfBounds {
        /// The offending id.
        edge: EdgeId,
        /// Number of edges actually present.
        len: usize,
    },
    /// A self-loop was rejected (network links connect distinct nodes).
    SelfLoop(NodeId),
    /// A generator was asked for an impossible topology.
    InvalidTopology(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, len } => {
                write!(f, "node {node} out of bounds (graph has {len} nodes)")
            }
            GraphError::EdgeOutOfBounds { edge, len } => {
                write!(f, "edge {edge} out of bounds (graph has {len} edges)")
            }
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
            GraphError::InvalidTopology(msg) => write!(f, "invalid topology request: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_human_readable() {
        let e = GraphError::NodeOutOfBounds {
            node: NodeId(9),
            len: 3,
        };
        assert_eq!(e.to_string(), "node 9 out of bounds (graph has 3 nodes)");
        let e = GraphError::SelfLoop(NodeId(2));
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::InvalidTopology("links < nodes - 1".into());
        assert!(e.to_string().contains("links < nodes - 1"));
        let e = GraphError::EdgeOutOfBounds {
            edge: EdgeId(4),
            len: 2,
        };
        assert!(e.to_string().contains("edge 4"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<GraphError>();
    }
}
