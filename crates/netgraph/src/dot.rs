//! Graphviz DOT export.
//!
//! Regenerates the Fig. 3 / Fig. 4 style network-plus-mapping illustrations:
//! the experiment harness renders the chosen path and module groups by
//! styling nodes and edges through the label closures.

use crate::{Edge, EdgeId, Graph, NodeId};
use std::fmt::Write as _;

/// Options controlling DOT output.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name used in the `digraph`/`graph` header.
    pub name: String,
    /// When true, symmetric edge pairs (created by `add_undirected_edge`)
    /// are collapsed into single undirected edges and the output is a
    /// `graph` instead of a `digraph`.
    pub collapse_symmetric: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "G".to_string(),
            collapse_symmetric: true,
        }
    }
}

/// Renders `g` to DOT. `node_attrs`/`edge_attrs` return raw attribute lists
/// (e.g. `label="node 3", shape=box`); return an empty string for defaults.
pub fn to_dot<N, E>(
    g: &Graph<N, E>,
    opts: &DotOptions,
    mut node_attrs: impl FnMut(NodeId, &N) -> String,
    mut edge_attrs: impl FnMut(EdgeId, &Edge<E>) -> String,
) -> String {
    let mut out = String::new();
    let (kind, arrow) = if opts.collapse_symmetric {
        ("graph", "--")
    } else {
        ("digraph", "->")
    };
    writeln!(out, "{kind} {} {{", sanitize(&opts.name)).unwrap();
    for (id, n) in g.nodes() {
        let attrs = node_attrs(id, n);
        if attrs.is_empty() {
            writeln!(out, "  {id};").unwrap();
        } else {
            writeln!(out, "  {id} [{attrs}];").unwrap();
        }
    }
    for (id, e) in g.edges() {
        if opts.collapse_symmetric {
            // keep only the canonical direction of each symmetric pair
            if e.src > e.dst && g.has_edge(e.dst, e.src) {
                continue;
            }
        }
        let attrs = edge_attrs(id, e);
        if attrs.is_empty() {
            writeln!(out, "  {} {arrow} {};", e.src, e.dst).unwrap();
        } else {
            writeln!(out, "  {} {arrow} {} [{attrs}];", e.src, e.dst).unwrap();
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "G".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn sample() -> Graph<&'static str, f64> {
        let mut g = Graph::new();
        let a = g.add_node("src");
        let b = g.add_node("dst");
        g.add_undirected_edge(a, b, 100.0).unwrap();
        g
    }

    #[test]
    fn collapsed_output_is_an_undirected_graph() {
        let g = sample();
        let dot = to_dot(
            &g,
            &DotOptions::default(),
            |_, _| String::new(),
            |_, _| String::new(),
        );
        assert!(dot.starts_with("graph G {"));
        assert_eq!(dot.matches("0 -- 1").count(), 1);
        assert!(!dot.contains("1 -- 0"));
    }

    #[test]
    fn directed_output_keeps_both_directions() {
        let g = sample();
        let opts = DotOptions {
            collapse_symmetric: false,
            ..DotOptions::default()
        };
        let dot = to_dot(&g, &opts, |_, _| String::new(), |_, _| String::new());
        assert!(dot.starts_with("digraph G {"));
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("1 -> 0"));
    }

    #[test]
    fn attribute_closures_are_rendered() {
        let g = sample();
        let dot = to_dot(
            &g,
            &DotOptions::default(),
            |id, n| format!("label=\"{n} ({id})\""),
            |_, e| format!("label=\"{} Mbps\"", e.payload),
        );
        assert!(dot.contains("label=\"src (0)\""));
        assert!(dot.contains("label=\"100 Mbps\""));
    }

    #[test]
    fn graph_name_is_sanitized() {
        let g = sample();
        let opts = DotOptions {
            name: "fig 3: min-delay".into(),
            ..DotOptions::default()
        };
        let dot = to_dot(&g, &opts, |_, _| String::new(), |_, _| String::new());
        assert!(dot.starts_with("graph fig_3__min_delay {"));
    }

    #[test]
    fn one_way_edges_survive_collapsing() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(b, a, ()).unwrap(); // reverse-direction only
        let dot = to_dot(
            &g,
            &DotOptions::default(),
            |_, _| String::new(),
            |_, _| String::new(),
        );
        assert!(dot.contains("1 -- 0"));
    }
}
