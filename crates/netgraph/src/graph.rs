//! Adjacency-list directed multigraph.
//!
//! The representation follows the perf-guide advice for hot data structures:
//! dense `u32` ids, contiguous `Vec` storage, and per-node out-edge lists so
//! the ELPC dynamic programs can scan `adj(v)` (the inner loop of Eq. 3/5)
//! without hashing.

use crate::{EdgeId, GraphError, NodeId, Result};
use serde::{Deserialize, Serialize};

/// A directed edge with its endpoints and user payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge<E> {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// User payload (for networks: bandwidth and minimum link delay).
    pub payload: E,
}

/// An out-neighbor of a node: the connecting edge and the node reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neighbor {
    /// The edge leaving the queried node.
    pub edge: EdgeId,
    /// The node at the far end of `edge`.
    pub node: NodeId,
}

/// Adjacency-list directed multigraph, generic over node payload `N` and
/// edge payload `E`.
///
/// The paper's transport networks are undirected ("node vi ... is connected
/// to its neighbor node vj with a network link"), which we model as a
/// symmetric pair of directed edges created by
/// [`Graph::add_undirected_edge`]; directed graphs are also fully supported
/// because the DAG-workflow extension (§5 future work) needs them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph<N, E> {
    nodes: Vec<N>,
    edges: Vec<Edge<E>>,
    /// `out[v]` lists the ids of edges with `src == v`.
    out: Vec<Vec<EdgeId>>,
}

impl<N, E> Default for Graph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> Graph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out: Vec::new(),
        }
    }

    /// Creates an empty graph with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out: Vec::with_capacity(nodes),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of *directed* edges. An undirected link counts twice.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node and returns its dense id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(payload);
        self.out.push(Vec::new());
        id
    }

    /// Adds a directed edge `src -> dst`.
    ///
    /// Self-loops are rejected: in the paper's model, intra-node transfers
    /// are free and are represented by module grouping, not by links.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, payload: E) -> Result<EdgeId> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(Edge { src, dst, payload });
        self.out[src.index()].push(id);
        Ok(id)
    }

    /// Validates a node id against the current node count.
    #[inline]
    pub fn check_node(&self, node: NodeId) -> Result<()> {
        if node.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node,
                len: self.nodes.len(),
            })
        }
    }

    /// Validates an edge id against the current edge count.
    #[inline]
    pub fn check_edge(&self, edge: EdgeId) -> Result<()> {
        if edge.index() < self.edges.len() {
            Ok(())
        } else {
            Err(GraphError::EdgeOutOfBounds {
                edge,
                len: self.edges.len(),
            })
        }
    }

    /// Borrow a node payload.
    pub fn node(&self, id: NodeId) -> Result<&N> {
        self.check_node(id)?;
        Ok(&self.nodes[id.index()])
    }

    /// Mutably borrow a node payload.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut N> {
        self.check_node(id)?;
        Ok(&mut self.nodes[id.index()])
    }

    /// Borrow an edge.
    pub fn edge(&self, id: EdgeId) -> Result<&Edge<E>> {
        self.check_edge(id)?;
        Ok(&self.edges[id.index()])
    }

    /// Mutably borrow an edge payload (endpoints are immutable once added).
    pub fn edge_payload_mut(&mut self, id: EdgeId) -> Result<&mut E> {
        self.check_edge(id)?;
        Ok(&mut self.edges[id.index()].payload)
    }

    /// Iterate over `(id, payload)` for all nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Iterate over all node ids in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + Clone {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over `(id, edge)` for all directed edges in id order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge<E>)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::from_index(i), e))
    }

    /// Out-neighbors of `node` (edge + far endpoint), in insertion order.
    ///
    /// This is the `adj(vi)` scan at the heart of the ELPC recursions, so it
    /// allocates nothing.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = Neighbor> + '_ {
        self.out
            .get(node.index())
            .into_iter()
            .flatten()
            .map(|&eid| Neighbor {
                edge: eid,
                node: self.edges[eid.index()].dst,
            })
    }

    /// Out-neighbors of `node` paired with their edge records, in insertion
    /// order. This is the relaxation-loop variant of [`Graph::neighbors`]:
    /// the edge data arrives with the neighbor, so hot loops don't re-run
    /// the bounds check in [`Graph::edge`] on an id this iterator already
    /// guarantees valid.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (Neighbor, &Edge<E>)> {
        self.out
            .get(node.index())
            .into_iter()
            .flatten()
            .map(|&eid| {
                let e = &self.edges[eid.index()];
                (
                    Neighbor {
                        edge: eid,
                        node: e.dst,
                    },
                    e,
                )
            })
    }

    /// Out-degree of `node`. Out-of-bounds ids have degree zero.
    pub fn degree(&self, node: NodeId) -> usize {
        self.out.get(node.index()).map_or(0, Vec::len)
    }

    /// Finds the first edge `src -> dst`, if any.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out
            .get(src.index())?
            .iter()
            .copied()
            .find(|&eid| self.edges[eid.index()].dst == dst)
    }

    /// True if a directed edge `src -> dst` exists.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.find_edge(src, dst).is_some()
    }
}

impl<N, E: Clone> Graph<N, E> {
    /// Adds an undirected link as a symmetric pair of directed edges and
    /// returns `(forward, reverse)` ids. The two ids are always consecutive
    /// (`reverse.0 == forward.0 + 1`), so either direction can locate its
    /// twin without a lookup table.
    pub fn add_undirected_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        payload: E,
    ) -> Result<(EdgeId, EdgeId)> {
        let fwd = self.add_edge(a, b, payload.clone())?;
        let rev = self
            .add_edge(b, a, payload)
            .expect("reverse edge must be valid if forward edge was");
        debug_assert_eq!(rev.0, fwd.0 + 1);
        Ok((fwd, rev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph<&'static str, f64> {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_undirected_edge(a, b, 1.0).unwrap();
        g.add_undirected_edge(b, c, 2.0).unwrap();
        g.add_undirected_edge(c, a, 3.0).unwrap();
        g
    }

    #[test]
    fn nodes_get_dense_sequential_ids() {
        let mut g: Graph<u32, ()> = Graph::new();
        assert_eq!(g.add_node(10), NodeId(0));
        assert_eq!(g.add_node(20), NodeId(1));
        assert_eq!(g.add_node(30), NodeId(2));
        assert_eq!(g.node_count(), 3);
        assert_eq!(*g.node(NodeId(1)).unwrap(), 20);
    }

    #[test]
    fn undirected_edge_creates_consecutive_pair() {
        let g = triangle();
        assert_eq!(g.edge_count(), 6);
        // forward/reverse pairs share payload and flip endpoints
        let f = g.edge(EdgeId(0)).unwrap();
        let r = g.edge(EdgeId(1)).unwrap();
        assert_eq!((f.src, f.dst), (r.dst, r.src));
        assert_eq!(f.payload, r.payload);
    }

    #[test]
    fn neighbors_follow_insertion_order() {
        let g = triangle();
        let ns: Vec<NodeId> = g.neighbors(NodeId(0)).map(|n| n.node).collect();
        assert_eq!(ns, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn degree_counts_out_edges_only() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(a, c, ()).unwrap();
        g.add_edge(b, a, ()).unwrap();
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.degree(b), 1);
        assert_eq!(g.degree(c), 0);
        assert_eq!(g.degree(NodeId(99)), 0);
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        assert_eq!(g.add_edge(a, a, ()), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn out_of_bounds_endpoints_are_rejected() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let bogus = NodeId(7);
        assert!(matches!(
            g.add_edge(a, bogus, ()),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        assert!(matches!(
            g.add_edge(bogus, a, ()),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn find_edge_distinguishes_directions() {
        let mut g: Graph<(), u8> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e = g.add_edge(a, b, 9).unwrap();
        assert_eq!(g.find_edge(a, b), Some(e));
        assert_eq!(g.find_edge(b, a), None);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
    }

    #[test]
    fn multigraph_parallel_edges_are_allowed() {
        // Real networks can have parallel links (e.g. dedicated + shared).
        let mut g: Graph<(), u8> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(a, b, 2).unwrap();
        assert_eq!(g.degree(a), 2);
        // find_edge returns the first inserted
        assert_eq!(g.find_edge(a, b), Some(EdgeId(0)));
    }

    #[test]
    fn edge_payload_can_be_mutated_in_place() {
        let mut g = triangle();
        *g.edge_payload_mut(EdgeId(0)).unwrap() = 42.0;
        assert_eq!(g.edge(EdgeId(0)).unwrap().payload, 42.0);
        // the reverse twin is untouched (callers decide symmetric updates)
        assert_eq!(g.edge(EdgeId(1)).unwrap().payload, 1.0);
    }

    #[test]
    fn iterators_cover_everything_in_id_order() {
        let g = triangle();
        let ids: Vec<u32> = g.nodes().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let eids: Vec<u32> = g.edges().map(|(id, _)| id.0).collect();
        assert_eq!(eids, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn serde_round_trip_preserves_structure() {
        let g = triangle();
        let json = serde_json::to_string(&g).unwrap();
        let g2: Graph<String, f64> = serde_json::from_str(&json).unwrap();
        assert_eq!(g2.node_count(), 3);
        assert_eq!(g2.edge_count(), 6);
        assert_eq!(g2.edge(EdgeId(2)).unwrap().payload, 2.0);
        assert_eq!(
            g2.neighbors(NodeId(1)).count(),
            g.neighbors(NodeId(1)).count()
        );
    }

    #[test]
    fn with_capacity_starts_empty() {
        let g: Graph<(), ()> = Graph::with_capacity(16, 64);
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
