//! Flat CSR (compressed sparse row) graph snapshot and the cache-friendly
//! SSSP kernels that run on it.
//!
//! The adjacency-list [`Graph`] is the right structure for
//! *building* networks — cheap appends, payload access by id — but its
//! `Vec<Vec<EdgeId>>` out-lists make the all-pairs metric closure (the
//! production bottleneck past a few hundred nodes) a pointer-chasing walk:
//! every relaxation dereferences an out-list, fetches the edge record for
//! its destination, and re-resolves the edge cost through a closure. A
//! [`Csr`] snapshot packs the same adjacency into three flat arrays —
//! prefix-sum `offsets`, and slot-indexed `targets` / `edge_ids` — so a
//! neighbor scan is one contiguous slice read, and the caller resolves the
//! cost model **once per edge per batch** into a slot-aligned `Vec<f64>`
//! ([`Csr::cost_vector`]) instead of once per heap relaxation.
//!
//! ## Bit-for-bit contract
//!
//! [`SsspScratch::shortest_paths`] and [`SsspScratch::widest_paths`] are
//! drop-in replacements for [`algo::dijkstra`](crate::algo::dijkstra) and
//! [`algo::widest_paths`](crate::algo::widest_paths), identical down to the
//! last bit — `dist`/`prev` including predecessor choice under ties —
//! by construction rather than by luck:
//!
//! * CSR slots preserve the graph's out-edge insertion order, so the
//!   kernel relaxes arcs in exactly the order the adjacency-list kernel
//!   does, producing the same heap push sequence;
//! * the heap is the same `std::collections::BinaryHeap`, and its entries
//!   compare distances by their IEEE-754 bit patterns, which on the
//!   non-negative non-NaN values Dijkstra produces is order- and
//!   equality-isomorphic to `f64` comparison (the private `MinEntry`/`MaxEntry` key types) — every
//!   comparison returns the same `Ordering`, so the pop sequence (ties
//!   included) matches the legacy kernel's;
//! * the kernels stop early once every node has settled, which skips only
//!   provably stale heap entries and provably failing relaxations.
//!
//! The workspace-level `csr_equivalence` proptests pin this on random,
//! disconnected, and generator-produced topologies.
//!
//! ## Scratch reuse
//!
//! Multi-source (all-pairs) builds run the kernel thousands of times over
//! one snapshot. [`SsspScratch`] owns the binary heaps, recycling their
//! backing arrays across sources — the heap is the allocation that grows
//! unpredictably mid-run, so recycling it is what keeps the hot loop
//! allocation-free. Result buffers are deliberately *not* staged in
//! scratch: each run writes a fresh right-sized `dist`/`prev` pair and
//! moves it into the output, which measured faster than filling scratch
//! buffers and cloning them out. Hand each worker thread its own scratch —
//! the snapshot itself is immutable and freely shared.

use crate::algo::{ShortestPaths, WidestPaths};
use crate::{EdgeId, Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Immutable flat adjacency snapshot of a [`Graph`]: `offsets[v]..offsets[v+1]`
/// indexes the packed out-edge slots of node `v`, in the graph's insertion
/// order. Payload-free — pair it with a slot-indexed cost vector from
/// [`Csr::cost_vector`].
#[derive(Debug, Clone)]
pub struct Csr {
    /// Prefix-sum slot offsets, `node_count + 1` entries.
    offsets: Vec<u32>,
    /// Destination node per slot.
    targets: Vec<u32>,
    /// Originating [`EdgeId`] per slot (for predecessor links and cost
    /// resolution).
    edge_ids: Vec<u32>,
}

impl Csr {
    /// Snapshots the adjacency of `g`. Slot order within a node equals
    /// [`Graph::neighbors`] order, which is what keeps the CSR kernels
    /// bit-identical to the adjacency-list ones.
    pub fn from_graph<N, E>(g: &Graph<N, E>) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(g.edge_count());
        let mut edge_ids = Vec::with_capacity(g.edge_count());
        offsets.push(0);
        for v in g.node_ids() {
            for nb in g.neighbors(v) {
                targets.push(nb.node.0);
                edge_ids.push(nb.edge.0);
            }
            offsets.push(targets.len() as u32);
        }
        Csr {
            offsets,
            targets,
            edge_ids,
        }
    }

    /// Number of nodes in the snapshot.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of packed directed-edge slots.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// Resolves `cost` once per directed edge into a slot-aligned vector
    /// for [`SsspScratch::shortest_paths`] / [`SsspScratch::widest_paths`].
    /// This is the "once per batch" half of the CSR bargain: the returned
    /// vector is read sequentially by every source of the batch.
    pub fn cost_vector(&self, mut cost: impl FnMut(EdgeId) -> f64) -> Vec<f64> {
        self.edge_ids.iter().map(|&eid| cost(EdgeId(eid))).collect()
    }

    /// The packed out-slots of `v` as `(target, edge)` pairs — mirrors
    /// [`Graph::neighbors`]. Out-of-bounds nodes have no slots.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let (s, e) = self.slot_range(v);
        self.targets[s..e]
            .iter()
            .zip(&self.edge_ids[s..e])
            .map(|(&t, &eid)| (NodeId(t), EdgeId(eid)))
    }

    #[inline]
    fn slot_range(&self, v: NodeId) -> (usize, usize) {
        if v.index() + 1 >= self.offsets.len() {
            return (0, 0);
        }
        (
            self.offsets[v.index()] as usize,
            self.offsets[v.index() + 1] as usize,
        )
    }
}

/// Min-heap entry for the CSR Dijkstra, keyed on the IEEE-754 bit pattern
/// of the distance.
///
/// For the values this kernel produces — non-negative, non-NaN, and never
/// `-0.0` (costs are `>= 0` and IEEE addition of such values cannot yield a
/// negative zero) — the unsigned integer order of `f64::to_bits` is exactly
/// the floating-point order, and bit equality is exactly float equality.
/// Every comparison therefore returns the same `Ordering` the legacy `f64`
/// entry would, so `BinaryHeap` produces the identical pop sequence — ties
/// included — while comparing in one integer instruction instead of a
/// `partial_cmp` on floats (measured ~13% off the whole kernel).
struct MinEntry {
    bits: u64,
    node: u32,
}

impl PartialEq for MinEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bits == other.bits
    }
}
impl Eq for MinEntry {}
impl PartialOrd for MinEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MinEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want min-dist on top
        other.bits.cmp(&self.bits)
    }
}

/// Max-heap entry for the CSR widest-path kernel — same bit-order argument
/// as [`MinEntry`] (widths are non-negative and non-NaN; `f64::INFINITY`'s
/// bit pattern sorts above every finite width).
struct MaxEntry {
    bits: u64,
    node: u32,
}

impl PartialEq for MaxEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bits == other.bits
    }
}
impl Eq for MaxEntry {}
impl PartialOrd for MaxEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MaxEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bits.cmp(&other.bits)
    }
}

/// Reusable SSSP working memory: the binary heaps, whose backing arrays are
/// recycled across the sources of a multi-source batch (the heap is the
/// only buffer whose capacity survives a run — result arrays are written
/// once and moved into the output, which measured faster than staging them
/// in scratch and cloning out). Create one per worker thread; the [`Csr`]
/// snapshot itself is shared read-only.
#[derive(Default)]
pub struct SsspScratch {
    min_heap: BinaryHeap<MinEntry>,
    max_heap: BinaryHeap<MaxEntry>,
}

impl SsspScratch {
    /// Empty scratch; buffers grow to the snapshot's node count on first
    /// use and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// CSR Dijkstra from `src` under the slot-aligned `costs` vector
    /// (see [`Csr::cost_vector`]). Bit-identical to
    /// [`algo::dijkstra`](crate::algo::dijkstra) with the same cost
    /// function — including predecessor links under distance ties.
    ///
    /// # Panics
    /// Panics if `costs.len() != csr.arc_count()`; debug-panics on a
    /// negative or NaN cost (the algorithm's correctness contract).
    pub fn shortest_paths(&mut self, csr: &Csr, src: NodeId, costs: &[f64]) -> ShortestPaths {
        assert_eq!(
            costs.len(),
            csr.arc_count(),
            "cost vector must be slot-aligned with the CSR snapshot"
        );
        let n = csr.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        if src.index() < n {
            self.min_heap.clear();
            dist[src.index()] = 0.0;
            self.min_heap.push(MinEntry {
                bits: 0, // 0.0f64.to_bits()
                node: src.0,
            });
            let mut settled = 0usize;
            while let Some(MinEntry { bits, node: u }) = self.min_heap.pop() {
                let d = f64::from_bits(bits);
                if d > dist[u as usize] {
                    continue; // stale entry
                }
                // Once every node has settled, each remaining heap entry is
                // a stale duplicate (a node's settling entry is its lowest
                // ever pushed), so draining them cannot touch dist/prev —
                // breaking here is exact, not an approximation.
                settled += 1;
                if settled == n {
                    break;
                }
                let s = csr.offsets[u as usize] as usize;
                let e = csr.offsets[u as usize + 1] as usize;
                for (i, (&w, &tv)) in costs[s..e].iter().zip(&csr.targets[s..e]).enumerate() {
                    debug_assert!(
                        w >= 0.0 && !w.is_nan(),
                        "Dijkstra requires non-negative non-NaN costs, got {w}"
                    );
                    let v = tv as usize;
                    let nd = d + w;
                    if nd < dist[v] {
                        dist[v] = nd;
                        prev[v] = Some((NodeId(u), EdgeId(csr.edge_ids[s + i])));
                        self.min_heap.push(MinEntry {
                            bits: nd.to_bits(),
                            node: v as u32,
                        });
                    }
                }
            }
        }
        ShortestPaths { dist, prev }
    }

    /// CSR widest-path (maximum bottleneck) from `src` under the
    /// slot-aligned `widths` vector. Bit-identical to
    /// [`algo::widest_paths`](crate::algo::widest_paths).
    ///
    /// # Panics
    /// Panics if `widths.len() != csr.arc_count()`; debug-panics on a
    /// negative or NaN width.
    pub fn widest_paths(&mut self, csr: &Csr, src: NodeId, widths: &[f64]) -> WidestPaths {
        assert_eq!(
            widths.len(),
            csr.arc_count(),
            "width vector must be slot-aligned with the CSR snapshot"
        );
        let n = csr.node_count();
        let mut width = vec![0.0f64; n];
        let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        if src.index() < n {
            self.max_heap.clear();
            width[src.index()] = f64::INFINITY;
            self.max_heap.push(MaxEntry {
                bits: f64::INFINITY.to_bits(),
                node: src.0,
            });
            let mut settled = 0usize;
            while let Some(MaxEntry { bits, node: u }) = self.max_heap.pop() {
                let w = f64::from_bits(bits);
                if w < width[u as usize] {
                    continue; // stale
                }
                // exact early exit — see the shortest-path kernel
                settled += 1;
                if settled == n {
                    break;
                }
                let s = csr.offsets[u as usize] as usize;
                let e = csr.offsets[u as usize + 1] as usize;
                for (i, (&ew, &tv)) in widths[s..e].iter().zip(&csr.targets[s..e]).enumerate() {
                    debug_assert!(ew >= 0.0 && !ew.is_nan(), "invalid edge width {ew}");
                    let v = tv as usize;
                    let nw = w.min(ew);
                    if nw > width[v] {
                        width[v] = nw;
                        prev[v] = Some((NodeId(u), EdgeId(csr.edge_ids[s + i])));
                        self.max_heap.push(MaxEntry {
                            bits: nw.to_bits(),
                            node: v as u32,
                        });
                    }
                }
            }
        }
        WidestPaths { width, prev }
    }
}

/// One-shot CSR Dijkstra — convenience wrapper allocating a fresh scratch.
/// Multi-source callers should hold a [`SsspScratch`] instead.
pub fn dijkstra_csr(csr: &Csr, src: NodeId, costs: &[f64]) -> ShortestPaths {
    SsspScratch::new().shortest_paths(csr, src, costs)
}

/// One-shot CSR widest-path — convenience wrapper allocating a fresh
/// scratch.
pub fn widest_csr(csr: &Csr, src: NodeId, widths: &[f64]) -> WidestPaths {
    SsspScratch::new().widest_paths(csr, src, widths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{dijkstra, widest_paths};
    use crate::Graph;

    /// Weighted test graph (same as the Dijkstra module's diamond):
    /// 0 --1.0-- 1 --1.0-- 3
    ///  \                 /
    ///   --3.0-- 2 --0.5--
    fn diamond() -> (Graph<(), f64>, Vec<NodeId>) {
        let mut g = Graph::new();
        let ns: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_undirected_edge(ns[0], ns[1], 1.0).unwrap();
        g.add_undirected_edge(ns[1], ns[3], 1.0).unwrap();
        g.add_undirected_edge(ns[0], ns[2], 3.0).unwrap();
        g.add_undirected_edge(ns[2], ns[3], 0.5).unwrap();
        (g, ns)
    }

    fn assert_sp_identical(a: &ShortestPaths, b: &ShortestPaths) {
        assert_eq!(a.dist.len(), b.dist.len());
        for v in 0..a.dist.len() {
            assert_eq!(a.dist[v].to_bits(), b.dist[v].to_bits(), "dist at {v}");
            assert_eq!(a.prev[v], b.prev[v], "prev at {v}");
        }
    }

    #[test]
    fn snapshot_preserves_counts_and_neighbor_order() {
        let (g, _) = diamond();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.arc_count(), g.edge_count());
        for v in g.node_ids() {
            let legacy: Vec<_> = g.neighbors(v).map(|nb| (nb.node, nb.edge)).collect();
            let packed: Vec<_> = csr.neighbors(v).collect();
            assert_eq!(legacy, packed, "slot order at {v:?}");
        }
        // out-of-bounds nodes have no slots
        assert_eq!(csr.neighbors(NodeId(99)).count(), 0);
    }

    #[test]
    fn csr_dijkstra_matches_legacy_bit_for_bit() {
        let (g, ns) = diamond();
        let csr = Csr::from_graph(&g);
        let costs = csr.cost_vector(|eid| g.edge(eid).unwrap().payload);
        for &src in &ns {
            let legacy = dijkstra(&g, src, |_, e| e.payload);
            let fast = dijkstra_csr(&csr, src, &costs);
            assert_sp_identical(&legacy, &fast);
        }
    }

    #[test]
    fn csr_widest_matches_legacy_bit_for_bit() {
        let (g, ns) = diamond();
        let csr = Csr::from_graph(&g);
        let widths = csr.cost_vector(|eid| g.edge(eid).unwrap().payload);
        for &src in &ns {
            let legacy = widest_paths(&g, src, |_, e| e.payload);
            let fast = widest_csr(&csr, src, &widths);
            assert_eq!(legacy.width.len(), fast.width.len());
            for v in 0..legacy.width.len() {
                assert_eq!(legacy.width[v].to_bits(), fast.width[v].to_bits());
                assert_eq!(legacy.prev[v], fast.prev[v]);
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_sources_and_graphs() {
        let (g, ns) = diamond();
        let csr = Csr::from_graph(&g);
        let costs = csr.cost_vector(|eid| g.edge(eid).unwrap().payload);
        let mut scratch = SsspScratch::new();
        let first = scratch.shortest_paths(&csr, ns[0], &costs);
        // run from another source, then re-run the first: identical output
        let _ = scratch.shortest_paths(&csr, ns[3], &costs);
        let again = scratch.shortest_paths(&csr, ns[0], &costs);
        assert_sp_identical(&first, &again);
        // and a widest run on the same scratch does not disturb it
        let _ = scratch.widest_paths(&csr, ns[1], &costs);
        assert_sp_identical(&first, &scratch.shortest_paths(&csr, ns[0], &costs));
        // a smaller graph shrinks the output, not just the prefix
        let mut g2: Graph<(), f64> = Graph::new();
        let a = g2.add_node(());
        let b = g2.add_node(());
        g2.add_edge(a, b, 2.0).unwrap();
        let csr2 = Csr::from_graph(&g2);
        let costs2 = csr2.cost_vector(|eid| g2.edge(eid).unwrap().payload);
        let sp = scratch.shortest_paths(&csr2, a, &costs2);
        assert_eq!(sp.dist.len(), 2);
        assert_eq!(sp.dist[1], 2.0);
    }

    #[test]
    fn out_of_bounds_source_returns_all_unreachable() {
        let (g, _) = diamond();
        let csr = Csr::from_graph(&g);
        let costs = csr.cost_vector(|eid| g.edge(eid).unwrap().payload);
        let sp = dijkstra_csr(&csr, NodeId(50), &costs);
        assert!(sp.dist.iter().all(|d| d.is_infinite()));
        let wp = widest_csr(&csr, NodeId(50), &costs);
        assert!(wp.width.iter().all(|w| *w == 0.0));
    }

    #[test]
    #[should_panic(expected = "slot-aligned")]
    fn misaligned_cost_vector_is_rejected() {
        let (g, ns) = diamond();
        let csr = Csr::from_graph(&g);
        let _ = dijkstra_csr(&csr, ns[0], &[1.0, 2.0]);
    }

    #[test]
    fn empty_graph_snapshot_is_valid() {
        let g: Graph<(), f64> = Graph::new();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.arc_count(), 0);
        let sp = dijkstra_csr(&csr, NodeId(0), &[]);
        assert!(sp.dist.is_empty());
    }
}
