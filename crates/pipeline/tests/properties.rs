//! Property-based tests for the pipeline model and generator.

use elpc_pipeline::gen::PipelineSpec;
use elpc_pipeline::{Module, Pipeline};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated pipeline satisfies the §2.3 boundary conventions.
    #[test]
    fn generated_pipelines_respect_boundary_semantics(
        n in 2usize..60,
        seed in any::<u64>(),
    ) {
        let spec = PipelineSpec { modules: n, ..Default::default() };
        let p = spec.generate(&mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(p.len(), n);
        prop_assert_eq!(p.module(0).complexity, 0.0);     // source never computes
        prop_assert_eq!(p.module(n - 1).output_bytes, 0.0); // sink never transfers
        prop_assert_eq!(p.compute_work(0), 0.0);
        for j in 0..n - 1 {
            prop_assert!(p.module(j).output_bytes > 0.0);
        }
        // input of module j is output of module j-1
        for j in 1..n {
            prop_assert_eq!(p.input_bytes(j), p.module(j - 1).output_bytes);
        }
    }

    /// Total work equals the sum of stage works and is finite.
    #[test]
    fn total_work_is_sum_of_stage_works(n in 2usize..40, seed in any::<u64>()) {
        let spec = PipelineSpec { modules: n, ..Default::default() };
        let p = spec.generate(&mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        let sum: f64 = (0..n).map(|j| p.compute_work(j)).sum();
        prop_assert!((p.total_work() - sum).abs() <= 1e-9 * sum.max(1.0));
        prop_assert!(p.total_work().is_finite());
    }

    /// Serde round-trips preserve equality for any generated pipeline.
    #[test]
    fn serde_round_trip(n in 2usize..30, seed in any::<u64>()) {
        let spec = PipelineSpec { modules: n, ..Default::default() };
        let p = spec.generate(&mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        let p2: Pipeline = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        prop_assert_eq!(p, p2);
    }

    /// Construction rejects any negative complexity wherever it appears.
    #[test]
    fn negative_complexity_is_always_rejected(
        pos in 1usize..6,
        c in -1e6_f64..-1e-9,
    ) {
        let mut modules = vec![Module::new(0.0, 100.0)];
        for _ in 0..5 {
            modules.push(Module::new(1.0, 100.0));
        }
        modules.push(Module::new(1.0, 0.0));
        modules[pos].complexity = c;
        prop_assert!(Pipeline::new(modules).is_err());
    }

    /// `from_stages` length and parameter wiring is exact.
    #[test]
    fn from_stages_wiring(
        src_bytes in 1.0_f64..1e9,
        stages in prop::collection::vec((0.0_f64..100.0, 1.0_f64..1e8), 0..10),
        sink_c in 0.0_f64..100.0,
    ) {
        let p = Pipeline::from_stages(src_bytes, &stages, sink_c).unwrap();
        prop_assert_eq!(p.len(), stages.len() + 2);
        prop_assert_eq!(p.module(0).output_bytes, src_bytes);
        for (i, &(c, m)) in stages.iter().enumerate() {
            prop_assert_eq!(p.module(i + 1).complexity, c);
            prop_assert_eq!(p.module(i + 1).output_bytes, m);
        }
        prop_assert_eq!(p.module(p.len() - 1).complexity, sink_c);
    }
}
