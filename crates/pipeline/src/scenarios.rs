//! The paper's two motivating application pipelines (§1), plus the §2.1
//! client/server degenerate case, as ready-made [`Pipeline`] values.
//!
//! Parameter values are representative magnitudes chosen to exercise the
//! same qualitative behaviour the paper describes (large raw data shrinking
//! through filtering/extraction, then small presentation payloads); they
//! are *not* measurements of any specific system.

use crate::{Module, Pipeline};

/// Interactive remote visualization (Terascale Supernova Initiative style,
/// §1 item 1 and §2.1): "data filtering, isosurface extraction, geometry
/// rendering, image compositing, and final display".
///
/// `dataset_bytes` is the raw simulation slice retrieved from the remote
/// repository (defaults in [`remote_visualization_default`] use 50 MB).
pub fn remote_visualization(dataset_bytes: f64) -> Pipeline {
    let d = dataset_bytes;
    Pipeline::new(vec![
        // the source only transfers the raw dataset
        Module::named("data source", 0.0, d),
        // filtering drops ~60% of the raw data, light per-byte work
        Module::named("data filtering", 0.8, d * 0.4),
        // isosurface extraction is the heavy stage; geometry is ~10% of raw
        Module::named("isosurface extraction", 6.0, d * 0.1),
        // rendering rasterizes geometry into a framebuffer (~2 MB image)
        Module::named("geometry rendering", 4.0, 2.0e6),
        // compositing merges partial images, output ~ same size
        Module::named("image compositing", 1.5, 2.0e6),
        // final display decodes and presents; no further transfer
        Module::named("final display", 0.5, 0.0),
    ])
    .expect("scenario parameters are valid by construction")
}

/// [`remote_visualization`] with a 50 MB dataset.
pub fn remote_visualization_default() -> Pipeline {
    remote_visualization(5.0e7)
}

/// Streaming video-based monitoring (§1 item 2): "feature extraction and
/// detection, facial reconstruction, pattern recognition, data mining, and
/// identity matching on images that are continuously captured".
///
/// `frame_bytes` is the captured camera frame size (defaults use ~1.8 MB,
/// a 1280×720 RGB frame, in [`video_surveillance_default`]).
pub fn video_surveillance(frame_bytes: f64) -> Pipeline {
    let f = frame_bytes;
    Pipeline::new(vec![
        Module::named("camera capture", 0.0, f),
        // feature extraction reduces a frame to region descriptors
        Module::named("feature extraction", 3.0, f * 0.15),
        // facial reconstruction builds face models from descriptors
        Module::named("facial reconstruction", 8.0, f * 0.05),
        // pattern recognition scores candidate faces
        Module::named("pattern recognition", 5.0, 2.0e4),
        // data mining correlates against recent history
        Module::named("data mining", 2.5, 1.0e4),
        // identity matching hits the watchlist; alert-sized output
        Module::named("identity matching", 1.0, 0.0),
    ])
    .expect("scenario parameters are valid by construction")
}

/// [`video_surveillance`] with a 1280×720 RGB frame.
pub fn video_surveillance_default() -> Pipeline {
    video_surveillance(1280.0 * 720.0 * 3.0)
}

/// The §2.1 degenerate case: two end modules — "a traditional client/server
/// based computing paradigm". The server ships `payload_bytes`; the client
/// runs a computation of complexity `client_complexity` on it.
pub fn client_server(payload_bytes: f64, client_complexity: f64) -> Pipeline {
    Pipeline::new(vec![
        Module::named("server", 0.0, payload_bytes),
        Module::named("client", client_complexity, 0.0),
    ])
    .expect("scenario parameters are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_visualization_has_the_papers_five_processing_stages() {
        let p = remote_visualization_default();
        assert_eq!(p.len(), 6); // source + 5 stages of §1
        let names: Vec<&str> = p
            .modules()
            .iter()
            .map(|m| m.name.as_deref().unwrap())
            .collect();
        assert_eq!(
            names,
            vec![
                "data source",
                "data filtering",
                "isosurface extraction",
                "geometry rendering",
                "image compositing",
                "final display"
            ]
        );
    }

    #[test]
    fn visualization_data_shrinks_through_filtering_and_extraction() {
        let p = remote_visualization(1e8);
        // monotone shrink until the rendering stage
        assert!(p.module(1).output_bytes < p.module(0).output_bytes);
        assert!(p.module(2).output_bytes < p.module(1).output_bytes);
        // extraction is the most expensive per-byte stage
        let max_c = p.modules().iter().map(|m| m.complexity).fold(0.0, f64::max);
        assert_eq!(p.module(2).complexity, max_c);
    }

    #[test]
    fn surveillance_pipeline_matches_the_papers_stage_list() {
        let p = video_surveillance_default();
        assert_eq!(p.len(), 6);
        assert_eq!(p.module(0).complexity, 0.0);
        assert_eq!(p.module(5).name.as_deref(), Some("identity matching"));
        // every stage output fits in the camera frame (reducing pipeline)
        let frame = p.module(0).output_bytes;
        for m in p.modules() {
            assert!(m.output_bytes <= frame);
        }
    }

    #[test]
    fn scenario_pipelines_scale_with_their_input_parameter() {
        let small = remote_visualization(1e6);
        let large = remote_visualization(1e8);
        assert!(large.total_work() > small.total_work());
        let small = video_surveillance(1e5);
        let large = video_surveillance(1e7);
        assert!(large.total_work() > small.total_work());
    }

    #[test]
    fn client_server_is_a_two_module_pipeline() {
        let p = client_server(1e6, 2.0);
        assert_eq!(p.len(), 2);
        assert_eq!(p.compute_work(1), 2e6);
    }
}
