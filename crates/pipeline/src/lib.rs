//! # elpc-pipeline — linear computing pipelines (§2.1–2.2 of the paper)
//!
//! A computing pipeline is a chain of modules `M1 → M2 → … → Mn` between a
//! data source (`M1`) and an end user (`Mn`). Module `Mj` applies a
//! computation of complexity `c_j` to the `m_{j-1}` bytes received from its
//! predecessor and emits `m_j` bytes to its successor.
//!
//! Boundary semantics follow §2.3 exactly: *"the first module M1 only
//! transfers data from the source node and the last module Mn only performs
//! certain computation without data transfer"* — so `M1` has zero
//! complexity, and `Mn`'s output size is irrelevant.
//!
//! * [`Module`], [`Pipeline`] — the validated model, with the paper's
//!   parameter vocabulary (`ModuleID`, `ModuleComplexity`,
//!   `InputDataInBytes`, `OutputDataInBytes`).
//! * [`gen`] — seeded random pipeline generation per §4.1 ("randomly varying
//!   … the number of modules, module complexities, input data sizes, and
//!   output data sizes").
//! * [`scenarios`] — the two motivating applications of §1 as concrete
//!   pipelines: remote visualization (TSI) and video-based monitoring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
mod model;
pub mod scenarios;

pub use model::{Module, Pipeline, PipelineError};

/// Result alias for pipeline operations.
pub type Result<T> = std::result::Result<T, PipelineError>;
