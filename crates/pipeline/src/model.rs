//! The validated pipeline model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One pipeline stage. §4.1 parameters: `ModuleID` is the position in the
/// chain (0-based here, `M1` in the paper's 1-based notation is index 0);
/// `ModuleComplexity` is `c`; `OutputDataInBytes` is `m`. A module's
/// `InputDataInBytes` is its predecessor's output, so it is not stored
/// twice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Computational complexity `c` — an "abstract quantity that does not
    /// only depend on the computational complexity of the algorithm … but
    /// also the implementation details" (§4.1). Units: compute work per
    /// input byte; a node of power `p` runs the module in `c·m_in/p` ms.
    pub complexity: f64,
    /// Output data size `m` in bytes, sent to the successor module.
    pub output_bytes: f64,
    /// Optional stage name for reports ("isosurface extraction", …).
    pub name: Option<String>,
}

impl Module {
    /// An unnamed module.
    pub fn new(complexity: f64, output_bytes: f64) -> Self {
        Module {
            complexity,
            output_bytes,
            name: None,
        }
    }

    /// A named module.
    pub fn named(name: &str, complexity: f64, output_bytes: f64) -> Self {
        Module {
            complexity,
            output_bytes,
            name: Some(name.to_string()),
        }
    }
}

/// Errors from pipeline construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Fewer than two modules (a pipeline needs at least source + sink;
    /// "a computing pipeline with only two end modules reduces to a
    /// traditional client/server paradigm", §2.1).
    TooShort(usize),
    /// A module parameter is out of range.
    BadModule {
        /// 0-based module index.
        index: usize,
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::TooShort(n) => {
                write!(f, "pipeline needs at least 2 modules, got {n}")
            }
            PipelineError::BadModule { index, reason } => {
                write!(f, "bad module at index {index}: {reason}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// A validated linear pipeline `M1 → … → Mn`.
///
/// Invariants (checked at construction):
/// * at least 2 modules;
/// * the source module has `complexity == 0` (it only transfers data);
/// * every complexity is finite and non-negative;
/// * every output size except the sink's is finite and positive (each
///   intermediate module must hand *something* to its successor);
/// * the sink's output size is forced to 0 (no successor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    modules: Vec<Module>,
}

impl Pipeline {
    /// Builds a pipeline from modules, validating the §2.3 boundary
    /// conventions. The sink's `output_bytes` is normalized to 0.
    pub fn new(mut modules: Vec<Module>) -> crate::Result<Self> {
        if modules.len() < 2 {
            return Err(PipelineError::TooShort(modules.len()));
        }
        let last = modules.len() - 1;
        for (i, m) in modules.iter().enumerate() {
            if !m.complexity.is_finite() || m.complexity < 0.0 {
                return Err(PipelineError::BadModule {
                    index: i,
                    reason: format!(
                        "complexity must be finite and non-negative, got {}",
                        m.complexity
                    ),
                });
            }
            if i == 0 && m.complexity != 0.0 {
                return Err(PipelineError::BadModule {
                    index: 0,
                    reason: format!(
                        "the source module only transfers data (complexity must be 0, got {})",
                        m.complexity
                    ),
                });
            }
            if i < last && (!m.output_bytes.is_finite() || m.output_bytes <= 0.0) {
                return Err(PipelineError::BadModule {
                    index: i,
                    reason: format!(
                        "output size must be finite and positive, got {}",
                        m.output_bytes
                    ),
                });
            }
        }
        modules[last].output_bytes = 0.0;
        Ok(Pipeline { modules })
    }

    /// Convenience constructor: a source emitting `source_bytes`, then
    /// `(complexity, output_bytes)` stages, then a sink of complexity
    /// `sink_complexity`.
    pub fn from_stages(
        source_bytes: f64,
        stages: &[(f64, f64)],
        sink_complexity: f64,
    ) -> crate::Result<Self> {
        let mut modules = Vec::with_capacity(stages.len() + 2);
        modules.push(Module::named("source", 0.0, source_bytes));
        for (i, &(c, m)) in stages.iter().enumerate() {
            modules.push(Module::named(&format!("stage{}", i + 1), c, m));
        }
        modules.push(Module::named("sink", sink_complexity, 0.0));
        Pipeline::new(modules)
    }

    /// Number of modules `n` (including source and sink).
    #[inline]
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Pipelines are never empty (≥ 2 modules by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The modules in order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// The module at 0-based index `j`.
    ///
    /// # Panics
    /// Panics when out of range; mapping code iterates `0..len()`.
    #[inline]
    pub fn module(&self, j: usize) -> &Module {
        &self.modules[j]
    }

    /// Input size (bytes) of module `j`: the predecessor's output, or 0.0
    /// for the source (it reads local data — §2.3).
    #[inline]
    pub fn input_bytes(&self, j: usize) -> f64 {
        if j == 0 {
            0.0
        } else {
            self.modules[j - 1].output_bytes
        }
    }

    /// Compute work of module `j`: the paper's `c_j · m_{j-1}` term —
    /// divide by a node's power to get its runtime in ms.
    #[inline]
    pub fn compute_work(&self, j: usize) -> f64 {
        self.modules[j].complexity * self.input_bytes(j)
    }

    /// Total compute work of all modules — an instance-size statistic used
    /// in reports.
    pub fn total_work(&self) -> f64 {
        (0..self.len()).map(|j| self.compute_work(j)).sum()
    }

    /// Largest inter-module transfer size (bytes) — a lower-bound driver
    /// for the frame-rate bottleneck.
    pub fn max_transfer_bytes(&self) -> f64 {
        self.modules[..self.len() - 1]
            .iter()
            .map(|m| m.output_bytes)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_stage() -> Pipeline {
        Pipeline::new(vec![
            Module::named("source", 0.0, 1000.0),
            Module::named("filter", 2.0, 500.0),
            Module::named("sink", 1.0, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let p = three_stage();
        assert_eq!(p.len(), 3);
        assert_eq!(p.module(1).name.as_deref(), Some("filter"));
        assert_eq!(p.input_bytes(0), 0.0);
        assert_eq!(p.input_bytes(1), 1000.0);
        assert_eq!(p.input_bytes(2), 500.0);
    }

    #[test]
    fn compute_work_follows_c_times_m_in() {
        let p = three_stage();
        assert_eq!(p.compute_work(0), 0.0); // source never computes
        assert_eq!(p.compute_work(1), 2000.0);
        assert_eq!(p.compute_work(2), 500.0);
        assert_eq!(p.total_work(), 2500.0);
    }

    #[test]
    fn sink_output_is_normalized_to_zero() {
        let p = Pipeline::new(vec![
            Module::new(0.0, 10.0),
            Module::new(1.0, 99.0), // sink with spurious output size
        ])
        .unwrap();
        assert_eq!(p.module(1).output_bytes, 0.0);
    }

    #[test]
    fn too_short_pipelines_are_rejected() {
        assert_eq!(Pipeline::new(vec![]), Err(PipelineError::TooShort(0)));
        assert_eq!(
            Pipeline::new(vec![Module::new(0.0, 1.0)]),
            Err(PipelineError::TooShort(1))
        );
    }

    #[test]
    fn source_must_not_compute() {
        let err = Pipeline::new(vec![Module::new(1.0, 10.0), Module::new(1.0, 0.0)]).unwrap_err();
        assert!(matches!(err, PipelineError::BadModule { index: 0, .. }));
    }

    #[test]
    fn negative_or_nonfinite_parameters_are_rejected() {
        let err = Pipeline::new(vec![
            Module::new(0.0, 10.0),
            Module::new(-1.0, 10.0),
            Module::new(1.0, 0.0),
        ])
        .unwrap_err();
        assert!(matches!(err, PipelineError::BadModule { index: 1, .. }));
        let err =
            Pipeline::new(vec![Module::new(0.0, f64::NAN), Module::new(1.0, 0.0)]).unwrap_err();
        assert!(matches!(err, PipelineError::BadModule { index: 0, .. }));
        // intermediate module with zero output starves its successor
        let err = Pipeline::new(vec![
            Module::new(0.0, 10.0),
            Module::new(1.0, 0.0),
            Module::new(1.0, 0.0),
        ])
        .unwrap_err();
        assert!(matches!(err, PipelineError::BadModule { index: 1, .. }));
    }

    #[test]
    fn from_stages_builds_the_expected_shape() {
        let p = Pipeline::from_stages(1e6, &[(2.0, 5e5), (4.0, 1e5)], 0.5).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.module(0).output_bytes, 1e6);
        assert_eq!(p.module(1).complexity, 2.0);
        assert_eq!(p.module(3).complexity, 0.5);
        assert_eq!(p.module(3).output_bytes, 0.0);
    }

    #[test]
    fn max_transfer_ignores_the_sink() {
        let p = three_stage();
        assert_eq!(p.max_transfer_bytes(), 1000.0);
    }

    #[test]
    fn two_module_pipeline_is_client_server() {
        // §2.1: "a computing pipeline with only two end modules reduces to
        // a traditional client/server based computing paradigm"
        let p = Pipeline::new(vec![Module::new(0.0, 1e6), Module::new(3.0, 0.0)]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.compute_work(1), 3e6);
    }

    #[test]
    fn serde_round_trip() {
        let p = three_stage();
        let json = serde_json::to_string(&p).unwrap();
        let p2: Pipeline = serde_json::from_str(&json).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn errors_display_cleanly() {
        assert_eq!(
            PipelineError::TooShort(1).to_string(),
            "pipeline needs at least 2 modules, got 1"
        );
        assert!(PipelineError::BadModule {
            index: 3,
            reason: "x".into()
        }
        .to_string()
        .contains("index 3"));
    }
}
