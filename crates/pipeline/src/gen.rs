//! Seeded random pipeline generation (§4.1).
//!
//! The paper generates simulation datasets "by randomly varying … the number
//! of modules, module complexities, input data sizes, and output data sizes
//! in a pipeline … within a suitably selected range of values". [`PipelineSpec`]
//! captures those ranges; [`PipelineSpec::generate`] draws a valid
//! [`Pipeline`] from them.

use crate::{Module, Pipeline, PipelineError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Ranges from which pipeline parameters are drawn.
///
/// Data sizes evolve multiplicatively: each stage's output is its input
/// times a factor drawn from `size_factor`. Factors below 1 model reducing
/// stages (filtering, feature extraction); above 1, expanding stages
/// (rendering raw geometry). This matches how real visualization pipelines
/// shrink and grow data rather than drawing sizes independently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Number of modules including source and sink (must be ≥ 2).
    pub modules: usize,
    /// Complexity range for intermediate and sink modules.
    pub complexity: Range<f64>,
    /// Source dataset size range in bytes.
    pub source_bytes: Range<f64>,
    /// Per-stage output/input size factor range.
    pub size_factor: Range<f64>,
}

impl Default for PipelineSpec {
    fn default() -> Self {
        // Defaults give visualization-like pipelines: megabyte datasets,
        // mostly reducing stages.
        PipelineSpec {
            modules: 5,
            complexity: 0.5..5.0,
            source_bytes: 1e5..1e7,
            size_factor: 0.2..1.5,
        }
    }
}

impl PipelineSpec {
    /// Draws a pipeline from the spec.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Result<Pipeline> {
        self.validate()?;
        let n = self.modules;
        let mut modules = Vec::with_capacity(n);
        let src_bytes = sample(rng, &self.source_bytes);
        modules.push(Module::named("source", 0.0, src_bytes));
        let mut bytes = src_bytes;
        for j in 1..n {
            let c = sample(rng, &self.complexity);
            if j == n - 1 {
                modules.push(Module::named("sink", c, 0.0));
            } else {
                bytes = (bytes * sample(rng, &self.size_factor)).max(1.0);
                modules.push(Module::named(&format!("stage{j}"), c, bytes));
            }
        }
        Pipeline::new(modules)
    }

    /// Checks that the ranges can produce a valid pipeline.
    pub fn validate(&self) -> Result<()> {
        if self.modules < 2 {
            return Err(PipelineError::TooShort(self.modules));
        }
        let bad = |what: &str| {
            Err(PipelineError::BadModule {
                index: 0,
                reason: format!("invalid spec: {what}"),
            })
        };
        if self.complexity.start < 0.0 || self.complexity.end < self.complexity.start {
            return bad("complexity range must be non-negative and ordered");
        }
        if self.source_bytes.start <= 0.0 || self.source_bytes.end < self.source_bytes.start {
            return bad("source size range must be positive and ordered");
        }
        if self.size_factor.start <= 0.0 || self.size_factor.end < self.size_factor.start {
            return bad("size factor range must be positive and ordered");
        }
        Ok(())
    }
}

/// Uniform sample from a possibly-degenerate range.
fn sample<R: Rng>(rng: &mut R, r: &Range<f64>) -> f64 {
    if r.end > r.start {
        rng.gen_range(r.start..r.end)
    } else {
        r.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generated_pipelines_are_valid_and_right_sized() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for n in [2, 3, 5, 20, 100] {
            let spec = PipelineSpec {
                modules: n,
                ..PipelineSpec::default()
            };
            let p = spec.generate(&mut rng).unwrap();
            assert_eq!(p.len(), n);
            assert_eq!(p.module(0).complexity, 0.0);
            assert_eq!(p.module(n - 1).output_bytes, 0.0);
        }
    }

    #[test]
    fn sizes_evolve_multiplicatively_within_factor_bounds() {
        let spec = PipelineSpec {
            modules: 10,
            size_factor: 0.5..0.9,
            ..PipelineSpec::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = spec.generate(&mut rng).unwrap();
        for j in 1..p.len() - 1 {
            let input = p.input_bytes(j);
            let output = p.module(j).output_bytes;
            let factor = output / input;
            assert!(
                (0.5..0.9).contains(&factor) || output == 1.0,
                "stage {j}: factor {factor}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = PipelineSpec::default();
        let a = spec.generate(&mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let b = spec.generate(&mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let c = spec.generate(&mut ChaCha8Rng::seed_from_u64(6)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_point_ranges_are_allowed() {
        let spec = PipelineSpec {
            modules: 4,
            complexity: 2.0..2.0,
            source_bytes: 1000.0..1000.0,
            size_factor: 1.0..1.0,
        };
        let p = spec.generate(&mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        assert_eq!(p.module(1).complexity, 2.0);
        assert_eq!(p.module(1).output_bytes, 1000.0);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let bad = PipelineSpec {
            modules: 1,
            ..PipelineSpec::default()
        };
        assert!(bad.generate(&mut rng).is_err());
        let bad = PipelineSpec {
            complexity: -1.0..2.0,
            ..PipelineSpec::default()
        };
        assert!(bad.generate(&mut rng).is_err());
        let bad = PipelineSpec {
            source_bytes: 0.0..0.0,
            ..PipelineSpec::default()
        };
        assert!(bad.generate(&mut rng).is_err());
        let bad = PipelineSpec {
            size_factor: 0.9..0.1,
            ..PipelineSpec::default()
        };
        assert!(bad.generate(&mut rng).is_err());
    }

    #[test]
    fn output_sizes_never_hit_zero_mid_pipeline() {
        // aggressive shrink factors bottom out at 1 byte, staying valid
        let spec = PipelineSpec {
            modules: 50,
            size_factor: 0.01..0.02,
            ..PipelineSpec::default()
        };
        let p = spec.generate(&mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        for j in 0..p.len() - 1 {
            assert!(p.module(j).output_bytes >= 1.0);
        }
    }
}
