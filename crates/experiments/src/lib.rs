//! # elpc-experiments — the paper's tables and figures, regenerated
//!
//! One binary per artifact (see DESIGN.md §5 for the experiment index):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `fig2_table` | the Fig. 2 comparison table (20 cases × 3 algorithms × 2 objectives) |
//! | `fig3_fig4_paths` | the Fig. 3 / Fig. 4 worked mapping illustrations (ASCII + DOT) |
//! | `fig5_fig6_series` | the Fig. 5 / Fig. 6 per-case series (CSV) |
//! | `scaling` | §4.3's runtime claim (ms → s across problem sizes) |
//! | `ablation_gap` | E8: ELPC-rate heuristic vs exact optimum |
//! | `ablation_mld` | A1: the MLD cost-model term on vs off |
//! | `validate_sim` | V1: analytic objectives vs discrete-event execution |
//!
//! All binaries print human-readable tables to stdout and drop
//! machine-readable artifacts under `results/`.

use elpc_mapping::CostModel;
use elpc_workloads::compare::{run_case_opts, CaseResult, CompareOptions};
use elpc_workloads::{cases, sweep, ClosureBank};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Directory where experiment artifacts are written.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("ELPC_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("cannot create results directory");
    p
}

/// Runs the full 20-case suite (both objectives, all algorithms) in
/// parallel, or loads a previously computed JSON artifact when present and
/// `reuse` is true.
pub fn suite_results(reuse: bool) -> Vec<CaseResult> {
    let path = results_dir().join("fig2_results.json");
    if reuse {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(rows) = serde_json::from_str::<Vec<CaseResult>>(&text) {
                if rows.len() == 20 {
                    eprintln!("(reusing cached {})", path.display());
                    return rows;
                }
            }
        }
    }
    let specs = cases::paper_cases();
    let cost = CostModel::default();
    // one closure bank across the sweep: suite cases all draw distinct
    // networks, so this records (rather than exploits) cross-case reuse —
    // sweeps that hold the topology fixed hit it instead. Tight capacity:
    // with no repeats every deposit is dead weight, so keep only a couple
    // of closures alive at a time instead of all twenty.
    let bank = ClosureBank::with_capacity(2);
    let rows = sweep::run_parallel(&specs, 0, |_, spec| {
        let inst = spec.generate().expect("suite cases generate cleanly");
        let row = run_case_opts(&inst, &cost, CompareOptions::banked(&bank));
        eprintln!("  finished {}", row.label);
        row
    });
    let stats = bank.stats();
    eprintln!(
        "(closure bank: {} checkouts, {:.0}% hit rate, {} closures on deposit)",
        stats.hits + stats.misses,
        stats.hit_rate() * 100.0,
        bank.len()
    );
    save_json(&path, &rows);
    rows
}

/// Writes pretty JSON to `path`.
pub fn save_json<T: serde::Serialize>(path: &Path, value: &T) {
    let mut f = std::fs::File::create(path).expect("cannot create artifact file");
    let text = serde_json::to_string_pretty(value).expect("serializable artifact");
    f.write_all(text.as_bytes()).expect("artifact write");
    eprintln!("wrote {}", path.display());
}

/// Writes CSV rows (first row = header) to `path`.
pub fn save_csv(path: &Path, rows: &[Vec<String>]) {
    let mut f = std::fs::File::create(path).expect("cannot create artifact file");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("artifact write");
    }
    eprintln!("wrote {}", path.display());
}

/// Renders a Markdown table.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        header.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Formats an outcome as `123.4` / `infeasible` / `error`.
pub fn fmt_ms(o: &elpc_workloads::compare::Outcome) -> String {
    match o.ms() {
        Some(ms) => format!("{ms:.1}"),
        None => match o {
            elpc_workloads::compare::Outcome::Infeasible => "infeasible".into(),
            _ => "error".into(),
        },
    }
}

/// Formats an outcome's frame rate as `12.34` fps.
pub fn fmt_fps(o: &elpc_workloads::compare::Outcome) -> String {
    match o.fps() {
        Some(fps) => format!("{fps:.2}"),
        None => match o {
            elpc_workloads::compare::Outcome::Infeasible => "infeasible".into(),
            _ => "error".into(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_renders() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(t.contains("| a | b |"));
        assert!(t.contains("|---|---|"));
        assert!(t.contains("| 3 | 4 |"));
    }

    #[test]
    fn outcome_formatting() {
        use elpc_workloads::compare::Outcome;
        assert_eq!(fmt_ms(&Outcome::Solved { ms: 12.34 }), "12.3");
        assert_eq!(fmt_ms(&Outcome::Infeasible), "infeasible");
        assert_eq!(fmt_fps(&Outcome::Solved { ms: 100.0 }), "10.00");
        assert_eq!(fmt_fps(&Outcome::Error("x".into())), "error");
    }
}
