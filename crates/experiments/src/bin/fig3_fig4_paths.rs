//! Regenerates **Fig. 3** (the optimal minimum-delay mapping) and **Fig. 4**
//! (the optimal maximum-frame-rate mapping) for the worked small instance —
//! 5 modules on a 6-node network — as ASCII diagrams plus Graphviz DOT
//! files with the selected paths highlighted.
//!
//! ```text
//! cargo run -p elpc-experiments --bin fig3_fig4_paths
//! ```
//!
//! Artifacts: `results/fig3_min_delay.dot`, `results/fig4_max_rate.dot`.

use elpc_experiments::results_dir;
use elpc_mapping::{solver, CostModel, Mapping, NodeId, Stage};
use elpc_netgraph::dot::{to_dot, DotOptions};
use elpc_workloads::cases::small_case;
use elpc_workloads::ClosureBank;

fn main() {
    let inst_owned = small_case().expect("the small case generates");
    let inst = inst_owned.as_instance();
    let cost = CostModel::default();
    // checked out of a (process-local) closure bank with parallel warm-up:
    // the small case is instant either way, but the bin exercises the same
    // context path the sweeps use
    let bank = ClosureBank::new();
    let ctx = bank.context_for(inst, cost, 0);

    println!("=== the Fig. 3/4 worked instance ===");
    println!(
        "{} — src node {}, dst node {}\n",
        inst_owned.label, inst.src, inst.dst
    );
    for (j, m) in inst.pipeline.modules().iter().enumerate() {
        println!(
            "  Mod{j}: complexity {:>6.2}  output {:>10.0} B",
            m.complexity, m.output_bytes
        );
    }
    println!();

    // ---- Fig. 3: minimum end-to-end delay with node reuse --------------
    let delay = solver("elpc_delay")
        .expect("registered")
        .solve(&ctx)
        .expect("the small case is delay-feasible");
    let delay_mapping = delay.mapping.as_ref().expect("strict DP yields a mapping");
    println!("--- Fig. 3: minimum end-to-end delay (node reuse) ---");
    println!("total delay: {:.1} ms", delay.objective_ms);
    print_mapping(&inst, &cost, delay_mapping);
    write_dot(&inst_owned, delay_mapping, "fig3_min_delay", "Fig3");

    // ---- Fig. 4: maximum frame rate without node reuse ------------------
    match solver("elpc_rate").expect("registered").solve(&ctx) {
        Ok(rate) => {
            let rate_mapping = rate.mapping.as_ref().expect("strict DP yields a mapping");
            println!("\n--- Fig. 4: maximum frame rate (no node reuse) ---");
            println!(
                "frame rate: {:.2} fps (bottleneck {:.1} ms)",
                rate.frame_rate_fps(),
                rate.objective_ms
            );
            print_mapping(&inst, &cost, rate_mapping);
            let b = cost.bottleneck_stage(&inst, rate_mapping).unwrap();
            match b {
                Stage::Compute { node, modules, ms, .. } => println!(
                    "bottleneck: computing modules {modules:?} on node {node} ({ms:.1} ms)"
                ),
                Stage::Transfer {
                    from_position,
                    bytes,
                    ms,
                } => println!(
                    "bottleneck: transferring {bytes:.0} B after position {from_position} ({ms:.1} ms)"
                ),
            }
            write_dot(&inst_owned, rate_mapping, "fig4_max_rate", "Fig4");
        }
        Err(e) => println!("\nFig. 4 mapping infeasible on this draw: {e}"),
    }

    bank.deposit(&ctx);
    eprintln!(
        "(closure: {} trees materialized; bank now holds {} entry/ies)",
        ctx.closure().cached_trees(),
        bank.len()
    );
}

/// ASCII rendering in the style of the paper's figures: modules above,
/// selected nodes below.
fn print_mapping(inst: &elpc_mapping::Instance<'_>, cost: &CostModel, mapping: &Mapping) {
    let assignment = mapping.assignment();
    let mods: Vec<String> = (0..assignment.len()).map(|j| format!("Mod{j}")).collect();
    println!("  pipeline: {}", mods.join(" -> "));
    let hosts: Vec<String> = assignment.iter().map(|n| format!("N{n}")).collect();
    println!("  hosts:    {}", hosts.join("    "));
    println!(
        "  path:     {:?}  groups: {:?}",
        mapping.path(),
        mapping.group_sizes()
    );
    for stage in cost.stage_times(inst, mapping).expect("valid mapping") {
        match stage {
            Stage::Compute {
                position,
                node,
                modules,
                ms,
            } => println!(
                "    g{position}: modules {}..{} on node {node}  compute {ms:.2} ms (p = {:.0})",
                modules.start,
                modules.end,
                inst.network.power(node)
            ),
            Stage::Transfer {
                from_position,
                bytes,
                ms,
            } => println!("    transfer after g{from_position}: {bytes:.0} B, {ms:.2} ms"),
        }
    }
}

/// DOT export with the chosen path and module groups as labels.
fn write_dot(inst: &elpc_workloads::ProblemInstance, mapping: &Mapping, file: &str, name: &str) {
    let on_path: std::collections::BTreeMap<NodeId, Vec<usize>> = {
        let mut m: std::collections::BTreeMap<NodeId, Vec<usize>> = Default::default();
        for (j, node) in mapping.assignment().into_iter().enumerate() {
            m.entry(node).or_default().push(j);
        }
        m
    };
    let path_edges: std::collections::BTreeSet<(NodeId, NodeId)> = mapping
        .path()
        .windows(2)
        .flat_map(|w| [(w[0], w[1]), (w[1], w[0])])
        .collect();
    let dot = to_dot(
        inst.network.graph(),
        &DotOptions {
            name: name.into(),
            collapse_symmetric: true,
        },
        |id, n| {
            let base = format!("label=\"node {id}\\np={:.0}\"", n.power);
            match on_path.get(&id) {
                Some(mods) => format!(
                    "{base}, style=filled, fillcolor=lightblue, xlabel=\"modules {mods:?}\""
                ),
                None => base,
            }
        },
        |_, e| {
            let thick = path_edges.contains(&(e.src, e.dst));
            let label = format!(
                "label=\"{:.0} Mbps\\n{:.1} ms\"",
                e.payload.bw_mbps, e.payload.mld_ms
            );
            if thick {
                format!("{label}, penwidth=3, color=blue")
            } else {
                label
            }
        },
    );
    let path = results_dir().join(format!("{file}.dot"));
    std::fs::write(&path, dot).expect("write dot file");
    eprintln!("wrote {}", path.display());
}
