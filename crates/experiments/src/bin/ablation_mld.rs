//! Ablation A1: the minimum-link-delay (MLD) term.
//!
//! §2.2 defines `T_transport = m/b + d`, but the paper's Eq. 1/3/4 write
//! only `m/b` (DESIGN.md erratum 1). This ablation quantifies what the
//! term is worth: both optimal objectives over the 20-case suite with
//! `include_mld` on vs off, plus how often the *chosen mapping itself*
//! changes. Solvers come from the registry; each cost-model variant gets
//! its own `SolveContext` (the closure is keyed by the cost model).
//!
//! ```text
//! cargo run --release -p elpc-experiments --bin ablation_mld
//! ```
//!
//! Artifact: `results/ablation_mld.csv`.

use elpc_experiments::{results_dir, save_csv};
use elpc_mapping::{solver, CostModel, Solution, SolveContext};
use elpc_workloads::{cases, sweep};

fn main() {
    let with = CostModel { include_mld: true };
    let without = CostModel { include_mld: false };
    let specs = cases::paper_cases();
    let delay = solver("elpc_delay").expect("registered");
    let rate = solver("elpc_rate").expect("registered");

    let rows = sweep::run_parallel(&specs, 0, |_, spec| {
        let inst_owned = spec.generate().expect("suite cases generate");
        let inst = inst_owned.as_instance();
        let ctx_with = SolveContext::new(inst, with);
        let ctx_without = SolveContext::new(inst, without);
        let d_with = delay.solve(&ctx_with).ok();
        let d_without = delay.solve(&ctx_without).ok();
        let r_with = rate.solve(&ctx_with).ok();
        let r_without = rate.solve(&ctx_without).ok();
        (spec.number, d_with, d_without, r_with, r_without)
    });

    println!("=== MLD term ablation over the 20-case suite ===\n");
    println!(
        "{:>5} {:>14} {:>14} {:>8} {:>9} | {:>12} {:>12} {:>8} {:>9}",
        "case",
        "delay+mld ms",
        "delay-mld ms",
        "Δ%",
        "remapped",
        "rate+mld ms",
        "rate-mld ms",
        "Δ%",
        "remapped"
    );
    let mut csv = vec![vec![
        "case".into(),
        "delay_with_mld_ms".into(),
        "delay_without_mld_ms".into(),
        "delay_mapping_changed".into(),
        "rate_with_mld_ms".into(),
        "rate_without_mld_ms".into(),
        "rate_mapping_changed".into(),
    ]];
    let changed = |a: &Option<Solution>, b: &Option<Solution>| -> (f64, f64, bool) {
        match (a, b) {
            (Some(x), Some(y)) => (x.objective_ms, y.objective_ms, x.assignment != y.assignment),
            _ => (f64::NAN, f64::NAN, false),
        }
    };
    let mut delay_changed = 0usize;
    let mut rate_changed = 0usize;
    for (case, d_with, d_without, r_with, r_without) in rows {
        let (dw, dwo, d_re) = changed(&d_with, &d_without);
        let (rw, rwo, r_re) = changed(&r_with, &r_without);
        delay_changed += usize::from(d_re);
        rate_changed += usize::from(r_re);
        println!(
            "{case:>5} {dw:>14.1} {dwo:>14.1} {:>7.2}% {:>9} | {rw:>12.1} {rwo:>12.1} {:>7.2}% {:>9}",
            if dw.is_nan() { 0.0 } else { (dw - dwo) / dw * 100.0 },
            if d_re { "yes" } else { "no" },
            if rw.is_nan() { 0.0 } else { (rw - rwo) / rw * 100.0 },
            if r_re { "yes" } else { "no" },
        );
        csv.push(vec![
            case.to_string(),
            format!("{dw:.3}"),
            format!("{dwo:.3}"),
            d_re.to_string(),
            format!("{rw:.3}"),
            format!("{rwo:.3}"),
            r_re.to_string(),
        ]);
    }
    save_csv(&results_dir().join("ablation_mld.csv"), &csv);
    println!(
        "\nthe MLD term changed the chosen delay mapping on {delay_changed}/20 \
         cases and the rate mapping on {rate_changed}/20 — dropping a term \
         the prose defines is not semantically free."
    );
}
