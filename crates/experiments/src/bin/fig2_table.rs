//! Regenerates the **Fig. 2** comparison table: minimum end-to-end delay
//! (node reuse) and maximum frame rate (no node reuse) for ELPC,
//! Streamline, and Greedy over the 20-case suite.
//!
//! ```text
//! cargo run --release -p elpc-experiments --bin fig2_table
//! ```
//!
//! Artifacts: `results/fig2_results.json`, `results/fig2_table.md`.

use elpc_experiments::{fmt_fps, fmt_ms, markdown_table, results_dir, suite_results};

fn main() {
    let fresh = std::env::args().any(|a| a == "--fresh");
    let rows = suite_results(!fresh);

    let header = [
        "case",
        "m / n / l",
        "ELPC delay (ms)",
        "Streamline delay (ms)",
        "Greedy delay (ms)",
        "Anneal delay (ms)",
        "GA delay (ms)",
        "Tabu delay (ms)",
        "LNS delay (ms)",
        "Portfolio delay (ms)",
        "ELPC rate (fps)",
        "Streamline rate (fps)",
        "Greedy rate (fps)",
        "Anneal rate (fps)",
        "GA rate (fps)",
        "Tabu rate (fps)",
        "LNS rate (fps)",
        "Portfolio rate (fps)",
        "quality gap (delay)",
        "quality gap (rate)",
    ];
    let fmt_gap = |g: Option<f64>| match g {
        Some(g) => format!("{g:.4}"),
        None => "—".to_string(),
    };
    let mut table = Vec::new();
    let mut delay_wins = 0usize;
    let mut rate_wins = 0usize;
    let mut rate_comparable = 0usize;
    let mut gap_count = 0usize;
    let mut gap_sum = 0.0f64;
    for (i, r) in rows.iter().enumerate() {
        table.push(vec![
            format!("{}", i + 1),
            format!("{} / {} / {}", r.dims.0, r.dims.1, r.dims.2),
            fmt_ms(&r.delay_elpc),
            fmt_ms(&r.delay_streamline),
            fmt_ms(&r.delay_greedy),
            fmt_ms(&r.delay_anneal),
            fmt_ms(&r.delay_genetic),
            fmt_ms(&r.delay_tabu),
            fmt_ms(&r.delay_lns),
            fmt_ms(&r.delay_portfolio),
            fmt_fps(&r.rate_elpc),
            fmt_fps(&r.rate_streamline),
            fmt_fps(&r.rate_greedy),
            fmt_fps(&r.rate_anneal),
            fmt_fps(&r.rate_genetic),
            fmt_fps(&r.rate_tabu),
            fmt_fps(&r.rate_lns),
            fmt_fps(&r.rate_portfolio),
            fmt_gap(r.quality_gap_delay),
            fmt_gap(r.quality_gap_rate),
        ]);
        if r.elpc_delay_dominates() {
            delay_wins += 1;
        }
        if r.rate_elpc.ms().is_some() {
            rate_comparable += 1;
            if r.elpc_rate_dominates() {
                rate_wins += 1;
            }
        }
        if let Some(g) = r.quality_gap_delay {
            gap_count += 1;
            gap_sum += g;
        }
    }
    let md = markdown_table(&header, &table);
    println!("## Fig. 2 — mapping performance comparison (20 cases)\n");
    println!("{md}");
    println!(
        "ELPC delay ≤ both baselines on {delay_wins}/20 cases; \
         ELPC rate ≤ both baselines on {rate_wins}/{rate_comparable} solvable cases."
    );
    if gap_count > 0 {
        println!(
            "Mean metaheuristic delay quality gap vs the routed optimum: \
             {:.4} over {gap_count} cases (1.0 = optimal).",
            gap_sum / gap_count as f64
        );
    }
    println!(
        "(ELPC columns use routed-overlay semantics so all algorithms are \
         charged transfers identically; the quality-gap columns divide the \
         best metaheuristic objective by the exact optimum of the same \
         routed search space. See DESIGN.md and ARCHITECTURE.md.)"
    );

    std::fs::write(results_dir().join("fig2_table.md"), md).expect("write fig2_table.md");
    eprintln!("wrote {}", results_dir().join("fig2_table.md").display());
}
