//! Experiment V1: the analytic cost model (Eq. 1/2) vs discrete-event
//! execution, on the suite prefix and the two §1 scenario pipelines.
//! Mappings come from the registry's strict DP solvers (the simulator
//! executes adjacent-path mappings).
//!
//! ```text
//! cargo run --release -p elpc-experiments --bin validate_sim
//! ```
//!
//! Artifact: `results/validate_sim.csv`.

use elpc_experiments::{results_dir, save_csv};
use elpc_mapping::{solver, CostModel, Instance, SolveContext};
use elpc_simcore::{simulate, Workload};
use elpc_workloads::cases;

fn main() {
    let cost = CostModel::default();
    let delay_solver = solver("elpc_delay").expect("registered");
    let rate_solver = solver("elpc_rate").expect("registered");
    let mut rows = vec![vec![
        "instance".to_string(),
        "analytic_delay_ms".to_string(),
        "simulated_delay_ms".to_string(),
        "analytic_fps".to_string(),
        "simulated_fps".to_string(),
    ]];
    println!("=== analytic model vs discrete-event execution ===\n");
    println!(
        "{:<44} {:>13} {:>13} {:>9} {:>9}",
        "instance", "Eq.1 (ms)", "DES (ms)", "Eq.2 fps", "DES fps"
    );

    let mut checks = Vec::new();
    for case in &cases::paper_cases()[..8] {
        checks.push(case.generate().expect("suite cases generate"));
    }
    // the two §1 scenario pipelines on the small-case network
    let base = cases::small_case().unwrap();
    for (label, pipe) in [
        (
            "remote visualization (50 MB)",
            elpc_pipeline::scenarios::remote_visualization_default(),
        ),
        (
            "video surveillance (720p)",
            elpc_pipeline::scenarios::video_surveillance_default(),
        ),
    ] {
        let mut inst = base.clone();
        inst.pipeline = pipe;
        inst.label = label.to_string();
        checks.push(inst);
    }

    let mut max_rel_err = 0.0_f64;
    for owned in &checks {
        let inst = Instance::new(&owned.network, &owned.pipeline, owned.src, owned.dst)
            .expect("owned instances are valid");
        let ctx = SolveContext::new(inst, cost);
        let delay = delay_solver.solve(&ctx).expect("delay-feasible");
        let delay_mapping = delay.mapping.as_ref().expect("strict DP yields a mapping");
        let sim_delay = simulate(&inst, &cost, delay_mapping, Workload::single())
            .unwrap()
            .end_to_end_delay_ms(0)
            .unwrap();
        let (a_fps, s_fps) = match rate_solver.solve(&ctx) {
            Ok(rate) => {
                let frames = 4 * owned.pipeline.len().max(5);
                let mapping = rate.mapping.as_ref().expect("strict DP yields a mapping");
                let rep = simulate(&inst, &cost, mapping, Workload::stream(frames)).unwrap();
                (rate.frame_rate_fps(), rep.steady_rate_fps().unwrap())
            }
            Err(_) => (f64::NAN, f64::NAN),
        };
        println!(
            "{:<44} {:>13.2} {:>13.2} {:>9.3} {:>9.3}",
            owned.label, delay.objective_ms, sim_delay, a_fps, s_fps
        );
        max_rel_err = max_rel_err.max((sim_delay - delay.objective_ms).abs() / delay.objective_ms);
        if a_fps.is_finite() {
            max_rel_err = max_rel_err.max((s_fps - a_fps).abs() / a_fps);
        }
        rows.push(vec![
            owned.label.clone(),
            format!("{:.4}", delay.objective_ms),
            format!("{sim_delay:.4}"),
            format!("{a_fps:.4}"),
            format!("{s_fps:.4}"),
        ]);
    }
    save_csv(&results_dir().join("validate_sim.csv"), &rows);
    println!("\nmaximum relative deviation: {max_rel_err:.2e} (zero up to float rounding)");
    assert!(
        max_rel_err < 1e-6,
        "simulation diverged from the analytic model"
    );
}
