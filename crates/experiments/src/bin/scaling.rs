//! Regenerates the §4.3 runtime observation: "the measured execution time
//! of these algorithms varies from milliseconds for small-scale problems to
//! seconds for large-scale ones", and checks the published complexity
//! classes (`O(n·|E|)` for ELPC-delay, `O(m·n²)` for Streamline, `O(m·n)`
//! for Greedy) by timing a size sweep.
//!
//! Algorithms come from the `elpc_mapping` solver registry; per size the
//! sweep reports a *cold* solve (fresh `SolveContext`, metric closure
//! computed from scratch), a *shared* solve (all solvers on one context),
//! and a *banked* solve — a second instance of the same topology checked
//! out of a cross-instance [`ClosureBank`], the parameter-sweep shape where
//! consecutive cases hold the network fixed — making both reuse tiers
//! visible in the same artifact.
//!
//! A second phase measures the **scale wall**: all-sources metric-closure
//! construction on Barabási–Albert scale-free networks at 100 / 1 000 /
//! 10 000 nodes, comparing the legacy lazy adjacency-list path
//! (`routed_from` per source — cost model resolved per heap relaxation)
//! against the batched CSR path (`par_warm` — flat snapshot, slot-aligned
//! precomputed cost vector, recycled scratch), plus a banked routed solve
//! over the warm closure and a peak-RSS proxy. The two paths are verified
//! bit-identical on the spot before timings are reported.
//!
//! ```text
//! cargo run --release -p elpc-experiments --bin scaling
//! ```
//!
//! Artifacts: `results/scaling.csv` and `BENCH_closure_scaling.json`
//! (written into `crates/bench/` next to the criterion artifacts when run
//! from the workspace root, else into the results directory).
//!
//! `SCALING_SMOKE=1` runs a truncated CI-sized version of both phases
//! (closure sizes 100/300, shortened sweep) and writes the JSON into the
//! results directory only, leaving the committed artifact untouched.

use elpc_experiments::{results_dir, save_csv, save_json};
use elpc_mapping::{solver, CostModel, Instance, MetricClosure, NodeId, SolveContext};
use elpc_netsim::{Link, Network, Node};
use elpc_pipeline::Pipeline;
use elpc_workloads::{ClosureBank, InstanceSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Registry names timed by the sweep. Exact solvers are excluded (they are
/// exponential and exist to certify the others on small instances), and so
/// are the routed ELPC overlays: their all-pairs closure is quadratic in
/// node count and is benchmarked separately on a bounded topology by the
/// `context_reuse` bench.
const SOLVERS: [&str; 5] = [
    "elpc_delay",
    "elpc_rate",
    "streamline_delay",
    "streamline_rate",
    "greedy_delay",
];

/// Uniform payload carried across every boundary of the closure-scaling
/// pipeline: one distinct payload size keeps the all-sources closure to a
/// single batch, which is the shape the CSR warm path is built for.
const CLOSURE_PAYLOAD: f64 = 1e6;

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

/// One row of `BENCH_closure_scaling.json`.
#[derive(Debug, Serialize, Deserialize)]
struct ClosureScalingRow {
    nodes: usize,
    links: usize,
    /// Sources warmed (= nodes: the all-pairs closure).
    sources: usize,
    /// All-sources closure via the lazy adjacency-list path.
    legacy_cold_ms: f64,
    /// All-sources closure via the batched CSR path (1 thread).
    csr_cold_ms: f64,
    /// `legacy_cold_ms / csr_cold_ms`.
    speedup: f64,
    /// `elpc_delay_routed` on a ClosureBank checkout of the warm closure.
    banked_solve_ms: f64,
    /// `VmHWM` after the build — the peak-RSS proxy for the row.
    peak_rss_mb: f64,
}

/// The artifact envelope, shaped like the criterion shim's `BENCH_*.json`
/// files (a `group` name plus per-entry records).
#[derive(Debug, Serialize, Deserialize)]
struct ClosureScalingArtifact {
    group: String,
    rows: Vec<ClosureScalingRow>,
}

/// Peak resident set size (VmHWM) in MiB, from `/proc/self/status`; 0.0
/// when the proc interface is unavailable (non-Linux).
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            if let Some(kb) = rest
                .split_whitespace()
                .next()
                .and_then(|v| v.parse::<f64>().ok())
            {
                return kb / 1024.0;
            }
        }
    }
    0.0
}

/// A Barabási–Albert scale-free network with the suite's default node
/// power / link parameter ranges, deterministic per seed.
fn ba_network(n: usize, attach: usize, seed: u64) -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let topo =
        elpc_netgraph::gen::barabasi_albert(n, attach, &mut rng).expect("BA parameters are valid");
    let powers: Vec<f64> = (0..n).map(|_| rng_range(&mut rng, 50.0, 5000.0)).collect();
    let mut link_rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(0x9E3779B97F4A7C15));
    Network::from_topology(
        &topo,
        |i| Node::with_power(powers[i]),
        |_, _| {
            Link::new(
                rng_range(&mut link_rng, 1.0, 1000.0),
                rng_range(&mut link_rng, 0.1, 10.0),
            )
        },
    )
    .expect("BA topologies materialize")
}

fn rng_range(rng: &mut ChaCha8Rng, lo: f64, hi: f64) -> f64 {
    rng.gen_range(lo..hi)
}

/// Times all-sources closure construction (legacy lazy vs batched CSR) on
/// one BA network, verifies the two caches agree bit-for-bit on sampled
/// sources, and runs a banked routed solve over the warm closure.
fn closure_scaling_row(n: usize) -> ClosureScalingRow {
    let cost = CostModel::default();
    let net = ba_network(n, 3, 0xC5A0 + n as u64);
    let sources: Vec<NodeId> = net.node_ids().collect();

    // Interleaved A/B, median of `reps` alternating cold builds: the two
    // timings see the same machine state, and the median absorbs scheduler
    // noise. 10k-node builds are seconds each, so they run once.
    let reps = if n <= 1000 { 3 } else { 1 };
    let mut legacy_runs = Vec::with_capacity(reps);
    let mut csr_runs = Vec::with_capacity(reps);
    let mut legacy = MetricClosure::new(&net, cost);
    let mut warm = MetricClosure::new(&net, cost);
    for r in 0..reps {
        if r > 0 {
            // fresh closures so every rep is a cold build
            legacy = MetricClosure::new(&net, cost);
            warm = MetricClosure::new(&net, cost);
        }
        // legacy: one lazy routed_from per source — adjacency-list Dijkstra
        // with the cost model resolved per heap relaxation
        legacy_runs.push(time_ms(|| {
            for &s in &sources {
                legacy.routed_from(s, CLOSURE_PAYLOAD);
            }
        }));
        // CSR: one batched warm — snapshot + slot-aligned cost vector +
        // recycled scratch, single thread so the comparison is
        // kernel-vs-kernel
        csr_runs.push(time_ms(|| {
            warm.par_warm(&sources, &[CLOSURE_PAYLOAD], 1);
        }));
    }
    legacy_runs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    csr_runs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let legacy_cold_ms = legacy_runs[reps / 2];
    let csr_cold_ms = csr_runs[reps / 2];

    // spot-check bit-identity on sampled sources (the proptest suite does
    // this exhaustively on small graphs; here we guard the measured pair)
    for &s in sources.iter().step_by((n / 8).max(1)) {
        let a = legacy.routed_from(s, CLOSURE_PAYLOAD);
        let b = warm.routed_from(s, CLOSURE_PAYLOAD);
        for v in 0..n {
            assert_eq!(
                a.dist[v].to_bits(),
                b.dist[v].to_bits(),
                "legacy/CSR divergence at n={n} src={s} v={v}"
            );
            assert_eq!(a.prev[v], b.prev[v]);
        }
    }
    let rss = peak_rss_mb();

    // banked routed solve: deposit the warm closure, check it out for an
    // instance on the same network, and run the routed delay DP warm
    let pipe = Pipeline::from_stages(
        CLOSURE_PAYLOAD,
        &[
            (1.0, CLOSURE_PAYLOAD),
            (1.0, CLOSURE_PAYLOAD),
            (1.0, CLOSURE_PAYLOAD),
        ],
        1.0,
    )
    .expect("uniform pipeline builds");
    let src = NodeId(0);
    let hops = elpc_netgraph::algo::hop_distances(net.graph(), src);
    let budget = (pipe.len() - 1) as u32;
    let dst = net
        .node_ids()
        .filter(|v| *v != src)
        .filter_map(|v| hops[v.index()].map(|d| (d, v)))
        .filter(|(d, _)| *d <= budget)
        .max_by_key(|(d, v)| (*d, std::cmp::Reverse(v.0)))
        .map(|(_, v)| v)
        .expect("BA networks are connected");
    let inst = Instance::new(&net, &pipe, src, dst).expect("endpoints are valid");
    let bank = ClosureBank::new();
    {
        let ctx = SolveContext::from_shared(inst, Arc::new(warm), 1)
            .expect("closure and instance share the network");
        bank.deposit(&ctx);
    }
    let bctx = bank.context_for(inst, cost, 1);
    let routed = solver("elpc_delay_routed").expect("registered");
    let banked_solve_ms = time_ms(|| {
        routed.solve(&bctx).expect("routed solve succeeds");
    });

    ClosureScalingRow {
        nodes: n,
        links: net.link_count(),
        sources: sources.len(),
        legacy_cold_ms,
        csr_cold_ms,
        speedup: legacy_cold_ms / csr_cold_ms,
        banked_solve_ms,
        peak_rss_mb: rss,
    }
}

fn run_closure_scaling(smoke: bool) {
    let sizes: &[usize] = if smoke {
        &[100, 300]
    } else {
        &[100, 1000, 10000]
    };
    println!(
        "\nclosure scaling (BA attach=3, all-sources, payload {:.0e} B):",
        CLOSURE_PAYLOAD
    );
    println!(
        "{:>7} {:>7} | {:>14} {:>12} {:>8} {:>15} {:>12}",
        "nodes",
        "links",
        "legacy cold ms",
        "csr cold ms",
        "speedup",
        "banked solve ms",
        "peak rss MB"
    );
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let row = closure_scaling_row(n);
        println!(
            "{:>7} {:>7} | {:>14.1} {:>12.1} {:>7.2}x {:>15.2} {:>12.1}",
            row.nodes,
            row.links,
            row.legacy_cold_ms,
            row.csr_cold_ms,
            row.speedup,
            row.banked_solve_ms,
            row.peak_rss_mb
        );
        rows.push(row);
    }
    let artifact = ClosureScalingArtifact {
        group: "closure_scaling".into(),
        rows,
    };
    // full runs refresh the committed artifact next to the criterion
    // benches; smoke runs (CI) never touch it
    let bench_dir = std::path::Path::new("crates/bench");
    let path = if !smoke && bench_dir.is_dir() {
        bench_dir.join("BENCH_closure_scaling.json")
    } else {
        results_dir().join("BENCH_closure_scaling.json")
    };
    save_json(&path, &artifact);
    // self-validate the artifact round-trips with the expected keys — the
    // same check CI's smoke run relies on
    let text = std::fs::read_to_string(&path).expect("artifact readable");
    let parsed: ClosureScalingArtifact =
        serde_json::from_str(&text).expect("closure-scaling artifact parses");
    assert_eq!(parsed.group, "closure_scaling");
    assert!(!parsed.rows.is_empty());
}

fn main() {
    let smoke = std::env::var("SCALING_SMOKE").is_ok_and(|v| v == "1");
    let cost = CostModel::default();
    let mut sweep: Vec<(usize, usize, usize)> = vec![
        (5, 10, 20),
        (10, 25, 80),
        (20, 50, 250),
        (30, 100, 800),
        (50, 150, 2000),
        (80, 250, 5000),
        (100, 400, 12000),
        (150, 600, 30000),
    ];
    if smoke {
        sweep.truncate(3);
    }

    let mut header: Vec<String> = vec!["modules".into(), "nodes".into(), "links".into()];
    header.extend(SOLVERS.iter().map(|s| format!("{s}_cold_ms")));
    header.extend(SOLVERS.iter().map(|s| format!("{s}_shared_ms")));
    header.extend(SOLVERS.iter().map(|s| format!("{s}_banked_ms")));
    header.push("closure_hit_rate".into());
    header.push("bank_hit".into());
    let mut rows = vec![header];
    let bank = ClosureBank::new();

    println!(
        "{:>8} {:>6} {:>7} | {:>14} {:>16} {:>16} {:>9}",
        "modules",
        "nodes",
        "links",
        "cold total ms",
        "shared total ms",
        "banked total ms",
        "hit rate"
    );
    for &(m, n, l) in &sweep {
        let inst_owned = InstanceSpec::sized(m, n, l)
            .generate(0xE1_9C + m as u64)
            .expect("sweep instances generate");
        let inst = inst_owned.as_instance();

        // cold: every solver pays its own metric closure
        let cold: Vec<f64> = SOLVERS
            .iter()
            .map(|name| {
                let s = solver(name).expect("registered");
                time_ms(|| {
                    let ctx = SolveContext::new(inst, cost);
                    let _ = s.solve(&ctx);
                })
            })
            .collect();

        // shared: one context for the whole roster
        let ctx = SolveContext::new(inst, cost);
        let shared: Vec<f64> = SOLVERS
            .iter()
            .map(|name| {
                let s = solver(name).expect("registered");
                time_ms(|| {
                    let _ = s.solve(&ctx);
                })
            })
            .collect();
        let hit_rate = ctx.closure().stats().hit_rate();
        bank.deposit(&ctx);

        // banked: a *second* instance of the same topology (the parameter-
        // sweep shape) checks the closure out of the bank and solves warm
        let inst2_owned = InstanceSpec::sized(m, n, l)
            .generate(0xE1_9C + m as u64)
            .expect("sweep instances regenerate");
        let bank_hits_before = bank.stats().hits;
        let bctx = bank.context_for(inst2_owned.as_instance(), cost, 1);
        let bank_hit = bank.stats().hits > bank_hits_before;
        let banked: Vec<f64> = SOLVERS
            .iter()
            .map(|name| {
                let s = solver(name).expect("registered");
                time_ms(|| {
                    let _ = s.solve(&bctx);
                })
            })
            .collect();

        println!(
            "{m:>8} {n:>6} {l:>7} | {:>14.2} {:>16.2} {:>16.2} {:>8.1}%",
            cold.iter().sum::<f64>(),
            shared.iter().sum::<f64>(),
            banked.iter().sum::<f64>(),
            hit_rate * 100.0
        );
        let mut row = vec![m.to_string(), n.to_string(), l.to_string()];
        row.extend(cold.iter().map(|t| format!("{t:.3}")));
        row.extend(shared.iter().map(|t| format!("{t:.3}")));
        row.extend(banked.iter().map(|t| format!("{t:.3}")));
        row.push(format!("{hit_rate:.4}"));
        row.push(if bank_hit { "1".into() } else { "0".into() });
        rows.push(row);
    }
    save_csv(&results_dir().join("scaling.csv"), &rows);
    let bstats = bank.stats();
    println!(
        "\n§4.3 claim check: small cases run in milliseconds, the largest in \
         seconds; sharing one SolveContext across the roster removes the \
         repeated all-pairs routed work (the hit-rate column), and the \
         ClosureBank extends that across instances sharing a topology \
         ({} checkouts, {:.0}% bank hit rate).",
        bstats.hits + bstats.misses,
        bstats.hit_rate() * 100.0
    );

    run_closure_scaling(smoke);
}
