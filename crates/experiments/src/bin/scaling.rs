//! Regenerates the §4.3 runtime observation: "the measured execution time
//! of these algorithms varies from milliseconds for small-scale problems to
//! seconds for large-scale ones", and checks the published complexity
//! classes (`O(n·|E|)` for ELPC-delay, `O(m·n²)` for Streamline, `O(m·n)`
//! for Greedy) by timing a size sweep.
//!
//! ```text
//! cargo run --release -p elpc-experiments --bin scaling
//! ```
//!
//! Artifact: `results/scaling.csv`.

use elpc_experiments::{results_dir, save_csv};
use elpc_mapping::{elpc_delay, elpc_rate, greedy, streamline, CostModel};
use elpc_workloads::InstanceSpec;
use std::time::Instant;

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let cost = CostModel::default();
    let sweep: Vec<(usize, usize, usize)> = vec![
        (5, 10, 20),
        (10, 25, 80),
        (20, 50, 250),
        (30, 100, 800),
        (50, 150, 2000),
        (80, 250, 5000),
        (100, 400, 12000),
        (150, 600, 30000),
    ];
    let mut rows = vec![vec![
        "modules".to_string(),
        "nodes".to_string(),
        "links".to_string(),
        "elpc_delay_ms".to_string(),
        "elpc_rate_ms".to_string(),
        "streamline_ms".to_string(),
        "greedy_ms".to_string(),
    ]];
    println!(
        "{:>8} {:>6} {:>7} | {:>14} {:>13} {:>13} {:>10}",
        "modules", "nodes", "links", "ELPC-delay ms", "ELPC-rate ms", "Streamline ms", "Greedy ms"
    );
    for &(m, n, l) in &sweep {
        let inst_owned = InstanceSpec::sized(m, n, l)
            .generate(0xE1_9C + m as u64)
            .expect("sweep instances generate");
        let inst = inst_owned.as_instance();
        let t_delay = time_ms(|| {
            let _ = elpc_delay::solve(&inst, &cost);
        });
        let t_rate = time_ms(|| {
            let _ = elpc_rate::solve(&inst, &cost);
        });
        let t_stream = time_ms(|| {
            let _ = streamline::solve_min_delay(&inst, &cost);
        });
        let t_greedy = time_ms(|| {
            let _ = greedy::solve_min_delay(&inst, &cost);
        });
        println!(
            "{m:>8} {n:>6} {l:>7} | {t_delay:>14.2} {t_rate:>13.2} {t_stream:>13.2} {t_greedy:>10.3}"
        );
        rows.push(vec![
            m.to_string(),
            n.to_string(),
            l.to_string(),
            format!("{t_delay:.3}"),
            format!("{t_rate:.3}"),
            format!("{t_stream:.3}"),
            format!("{t_greedy:.3}"),
        ]);
    }
    save_csv(&results_dir().join("scaling.csv"), &rows);
    println!(
        "\n§4.3 claim check: small cases run in milliseconds, the largest in \
         seconds (ELPC-rate carries the visited-set bookkeeping, matching \
         the NP-hard problem it approximates)."
    );
}
