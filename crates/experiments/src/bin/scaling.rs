//! Regenerates the §4.3 runtime observation: "the measured execution time
//! of these algorithms varies from milliseconds for small-scale problems to
//! seconds for large-scale ones", and checks the published complexity
//! classes (`O(n·|E|)` for ELPC-delay, `O(m·n²)` for Streamline, `O(m·n)`
//! for Greedy) by timing a size sweep.
//!
//! Algorithms come from the `elpc_mapping` solver registry; per size the
//! sweep reports a *cold* solve (fresh `SolveContext`, metric closure
//! computed from scratch), a *shared* solve (all solvers on one context),
//! and a *banked* solve — a second instance of the same topology checked
//! out of a cross-instance [`ClosureBank`], the parameter-sweep shape where
//! consecutive cases hold the network fixed — making both reuse tiers
//! visible in the same artifact.
//!
//! ```text
//! cargo run --release -p elpc-experiments --bin scaling
//! ```
//!
//! Artifact: `results/scaling.csv`.

use elpc_experiments::{results_dir, save_csv};
use elpc_mapping::{solver, CostModel, SolveContext};
use elpc_workloads::{ClosureBank, InstanceSpec};
use std::time::Instant;

/// Registry names timed by the sweep. Exact solvers are excluded (they are
/// exponential and exist to certify the others on small instances), and so
/// are the routed ELPC overlays: their all-pairs closure is quadratic in
/// node count and is benchmarked separately on a bounded topology by the
/// `context_reuse` bench.
const SOLVERS: [&str; 5] = [
    "elpc_delay",
    "elpc_rate",
    "streamline_delay",
    "streamline_rate",
    "greedy_delay",
];

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let cost = CostModel::default();
    let sweep: Vec<(usize, usize, usize)> = vec![
        (5, 10, 20),
        (10, 25, 80),
        (20, 50, 250),
        (30, 100, 800),
        (50, 150, 2000),
        (80, 250, 5000),
        (100, 400, 12000),
        (150, 600, 30000),
    ];

    let mut header: Vec<String> = vec!["modules".into(), "nodes".into(), "links".into()];
    header.extend(SOLVERS.iter().map(|s| format!("{s}_cold_ms")));
    header.extend(SOLVERS.iter().map(|s| format!("{s}_shared_ms")));
    header.extend(SOLVERS.iter().map(|s| format!("{s}_banked_ms")));
    header.push("closure_hit_rate".into());
    header.push("bank_hit".into());
    let mut rows = vec![header];
    let bank = ClosureBank::new();

    println!(
        "{:>8} {:>6} {:>7} | {:>14} {:>16} {:>16} {:>9}",
        "modules",
        "nodes",
        "links",
        "cold total ms",
        "shared total ms",
        "banked total ms",
        "hit rate"
    );
    for &(m, n, l) in &sweep {
        let inst_owned = InstanceSpec::sized(m, n, l)
            .generate(0xE1_9C + m as u64)
            .expect("sweep instances generate");
        let inst = inst_owned.as_instance();

        // cold: every solver pays its own metric closure
        let cold: Vec<f64> = SOLVERS
            .iter()
            .map(|name| {
                let s = solver(name).expect("registered");
                time_ms(|| {
                    let ctx = SolveContext::new(inst, cost);
                    let _ = s.solve(&ctx);
                })
            })
            .collect();

        // shared: one context for the whole roster
        let ctx = SolveContext::new(inst, cost);
        let shared: Vec<f64> = SOLVERS
            .iter()
            .map(|name| {
                let s = solver(name).expect("registered");
                time_ms(|| {
                    let _ = s.solve(&ctx);
                })
            })
            .collect();
        let hit_rate = ctx.closure().stats().hit_rate();
        bank.deposit(&ctx);

        // banked: a *second* instance of the same topology (the parameter-
        // sweep shape) checks the closure out of the bank and solves warm
        let inst2_owned = InstanceSpec::sized(m, n, l)
            .generate(0xE1_9C + m as u64)
            .expect("sweep instances regenerate");
        let bank_hits_before = bank.stats().hits;
        let bctx = bank.context_for(inst2_owned.as_instance(), cost, 1);
        let bank_hit = bank.stats().hits > bank_hits_before;
        let banked: Vec<f64> = SOLVERS
            .iter()
            .map(|name| {
                let s = solver(name).expect("registered");
                time_ms(|| {
                    let _ = s.solve(&bctx);
                })
            })
            .collect();

        println!(
            "{m:>8} {n:>6} {l:>7} | {:>14.2} {:>16.2} {:>16.2} {:>8.1}%",
            cold.iter().sum::<f64>(),
            shared.iter().sum::<f64>(),
            banked.iter().sum::<f64>(),
            hit_rate * 100.0
        );
        let mut row = vec![m.to_string(), n.to_string(), l.to_string()];
        row.extend(cold.iter().map(|t| format!("{t:.3}")));
        row.extend(shared.iter().map(|t| format!("{t:.3}")));
        row.extend(banked.iter().map(|t| format!("{t:.3}")));
        row.push(format!("{hit_rate:.4}"));
        row.push(if bank_hit { "1".into() } else { "0".into() });
        rows.push(row);
    }
    save_csv(&results_dir().join("scaling.csv"), &rows);
    let bstats = bank.stats();
    println!(
        "\n§4.3 claim check: small cases run in milliseconds, the largest in \
         seconds; sharing one SolveContext across the roster removes the \
         repeated all-pairs routed work (the hit-rate column), and the \
         ClosureBank extends that across instances sharing a topology \
         ({} checkouts, {:.0}% bank hit rate).",
        bstats.hits + bstats.misses,
        bstats.hit_rate() * 100.0
    );
}
