//! Experiment E8 + ablation A2: how often does the ELPC-rate single-label
//! heuristic miss the exact optimum, and does a K-best label set help?
//!
//! §3.1.2 claims the heuristic's failure mode "is extremely rare as shown
//! in our extensive experiments". This binary quantifies that claim on
//! hundreds of seeded small instances against the exhaustive solver.
//!
//! ```text
//! cargo run --release -p elpc-experiments --bin ablation_gap
//! ```
//!
//! Artifact: `results/ablation_gap.csv`.

use elpc_experiments::{results_dir, save_csv};
use elpc_mapping::elpc_rate::{solve_with, RateConfig};
use elpc_mapping::{exact, CostModel, MappingError};
use elpc_workloads::{sweep, InstanceSpec};

#[derive(Default, Clone, Copy)]
struct Tally {
    solved: usize,
    optimal: usize,
    missed_feasible: usize,
    gap_sum: f64,
    gap_max: f64,
}

fn main() {
    let trials: usize = std::env::args()
        .skip_while(|a| a != "--trials")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let cost = CostModel::default();
    let ks = [1usize, 2, 4, 8];

    let seeds: Vec<u64> = (0..trials as u64).collect();
    let per_seed = sweep::run_parallel(&seeds, 0, |_, &seed| {
        // small instances keep exhaustive search tractable
        let m = 3 + (seed % 3) as usize; // 3..=5 modules
        let n = m + 2 + (seed % 4) as usize; // a few spare nodes
        let max_l = n * (n - 1) / 2;
        let l = (n - 1) + (seed as usize * 7 % (max_l - n + 2));
        let Ok(inst_owned) = InstanceSpec::sized(m, n, l).generate(seed) else {
            return None;
        };
        let inst = inst_owned.as_instance();
        let ex = exact::max_rate(&inst, &cost, exact::ExactLimits::default());
        let mut out = Vec::new();
        for &k in &ks {
            let heur = solve_with(&inst, &cost, RateConfig { k_labels: k });
            out.push(match (&ex, &heur) {
                (Ok(e), Ok(h)) => Some((e.bottleneck_ms, Some(h.bottleneck_ms))),
                (Ok(e), Err(MappingError::Infeasible(_))) => Some((e.bottleneck_ms, None)),
                _ => None, // instance infeasible even exactly: skip
            });
        }
        Some(out)
    });

    let mut tallies = vec![Tally::default(); ks.len()];
    let mut usable = 0usize;
    for row in per_seed.into_iter().flatten() {
        if row.iter().all(Option::is_some) {
            usable += 1;
            for (t, cell) in tallies.iter_mut().zip(row) {
                let (exact_ms, heur) = cell.expect("checked");
                match heur {
                    None => t.missed_feasible += 1,
                    Some(h) => {
                        t.solved += 1;
                        let gap = (h - exact_ms) / exact_ms;
                        if gap <= 1e-9 {
                            t.optimal += 1;
                        }
                        t.gap_sum += gap.max(0.0);
                        t.gap_max = t.gap_max.max(gap);
                    }
                }
            }
        }
    }

    println!("=== ELPC-rate heuristic vs exact optimum ({usable} feasible instances) ===\n");
    println!(
        "{:>8} {:>9} {:>10} {:>12} {:>10} {:>9}",
        "k_labels", "solved", "optimal", "missed-path", "mean gap", "max gap"
    );
    let mut csv = vec![vec![
        "k_labels".to_string(),
        "solved".to_string(),
        "optimal".to_string(),
        "missed_feasible".to_string(),
        "mean_gap".to_string(),
        "max_gap".to_string(),
    ]];
    for (t, &k) in tallies.iter().zip(&ks) {
        let mean_gap = if t.solved > 0 {
            t.gap_sum / t.solved as f64
        } else {
            0.0
        };
        println!(
            "{:>8} {:>9} {:>10} {:>12} {:>9.3}% {:>8.3}%",
            k,
            t.solved,
            t.optimal,
            t.missed_feasible,
            mean_gap * 100.0,
            t.gap_max * 100.0
        );
        csv.push(vec![
            k.to_string(),
            t.solved.to_string(),
            t.optimal.to_string(),
            t.missed_feasible.to_string(),
            format!("{:.6}", mean_gap),
            format!("{:.6}", t.gap_max),
        ]);
    }
    save_csv(&results_dir().join("ablation_gap.csv"), &csv);

    let t1 = tallies[0];
    println!(
        "\n§3.1.2 claim check: the single-label heuristic found the exact \
         optimum on {}/{} instances ({:.1}%) and missed a feasible path on \
         {} — \"extremely rare\" holds when that fraction is small.",
        t1.optimal,
        usable,
        100.0 * t1.optimal as f64 / usable.max(1) as f64,
        t1.missed_feasible
    );
}
