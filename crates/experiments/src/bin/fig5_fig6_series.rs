//! Regenerates the **Fig. 5** (minimum end-to-end delay vs case number) and
//! **Fig. 6** (maximum frame rate vs case number) line-plot series as CSV,
//! one series per algorithm.
//!
//! ```text
//! cargo run --release -p elpc-experiments --bin fig5_fig6_series
//! ```
//!
//! Artifacts: `results/fig5_delay_series.csv`,
//! `results/fig6_rate_series.csv`.

use elpc_experiments::{results_dir, save_csv, suite_results};

fn main() {
    let fresh = std::env::args().any(|a| a == "--fresh");
    let rows = suite_results(!fresh);

    let to_cell = |o: &elpc_workloads::compare::Outcome, fps: bool| -> String {
        let v = if fps { o.fps() } else { o.ms() };
        v.map(|x| format!("{x:.4}")).unwrap_or_default() // empty = no point
    };

    let mut fig5 = vec![vec![
        "case".to_string(),
        "elpc_delay_ms".to_string(),
        "streamline_delay_ms".to_string(),
        "greedy_delay_ms".to_string(),
    ]];
    let mut fig6 = vec![vec![
        "case".to_string(),
        "elpc_rate_fps".to_string(),
        "streamline_rate_fps".to_string(),
        "greedy_rate_fps".to_string(),
    ]];
    for (i, r) in rows.iter().enumerate() {
        fig5.push(vec![
            format!("{}", i + 1),
            to_cell(&r.delay_elpc, false),
            to_cell(&r.delay_streamline, false),
            to_cell(&r.delay_greedy, false),
        ]);
        fig6.push(vec![
            format!("{}", i + 1),
            to_cell(&r.rate_elpc, true),
            to_cell(&r.rate_streamline, true),
            to_cell(&r.rate_greedy, true),
        ]);
    }
    save_csv(&results_dir().join("fig5_delay_series.csv"), &fig5);
    save_csv(&results_dir().join("fig6_rate_series.csv"), &fig6);

    // qualitative checks the paper reports for these figures
    let delays: Vec<f64> = rows.iter().filter_map(|r| r.delay_elpc.ms()).collect();
    let first_half: f64 =
        delays[..delays.len() / 2].iter().sum::<f64>() / (delays.len() / 2) as f64;
    let second_half: f64 =
        delays[delays.len() / 2..].iter().sum::<f64>() / (delays.len() - delays.len() / 2) as f64;
    println!("Fig. 5 shape: mean ELPC delay grows from {first_half:.0} ms (cases 1-10) to {second_half:.0} ms (cases 11-20)");
    println!("  (the paper: delay generally — not absolutely — increases with problem size)");
    let rates: Vec<f64> = rows.iter().filter_map(|r| r.rate_elpc.fps()).collect();
    let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
    let max = rates.iter().copied().fold(0.0, f64::max);
    println!(
        "Fig. 6 shape: ELPC frame rate spans {min:.2}..{max:.2} fps with no monotone trend \
         ({} of 20 cases solvable without reuse)",
        rates.len()
    );
}
