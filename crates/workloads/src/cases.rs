//! The 20-case experiment suite (Fig. 2 / Fig. 5 / Fig. 6).
//!
//! The paper tabulates 20 cases of growing `(m modules, n nodes, l links)`
//! and reports minimum end-to-end delay and maximum frame rate for ELPC,
//! Streamline, and Greedy on each. The scanned PDF's table is OCR-garbled,
//! so the *exact* published dimensions and random draws are unrecoverable;
//! this suite reconstructs the study's shape (DESIGN.md §4): a geometric
//! progression from the paper's worked small case (5 modules, 6 nodes —
//! shown in Fig. 3/4) up to large instances, with one fixed seed per case.
//!
//! Note on the small case: the paper says "5 modules, 6 nodes, and 32
//! links", but a 6-node simple graph holds at most 15 undirected links —
//! the authors evidently counted per-direction (≤ 30) plus parallels. Our
//! case 1 uses the complete `K6` (15 undirected = 30 directed links).

use crate::{InstanceSpec, ProblemInstance};
use serde::{Deserialize, Serialize};

/// One row of the suite: dimensions plus the generation seed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseSpec {
    /// 1-based case number (the x-axis of Fig. 5/6).
    pub number: usize,
    /// Pipeline modules `m`.
    pub modules: usize,
    /// Network nodes `n`.
    pub nodes: usize,
    /// Undirected links `l`.
    pub links: usize,
    /// Generation seed.
    pub seed: u64,
}

impl CaseSpec {
    /// Materializes the case into a problem instance.
    pub fn generate(&self) -> crate::Result<ProblemInstance> {
        let mut inst =
            InstanceSpec::sized(self.modules, self.nodes, self.links).generate(self.seed)?;
        inst.label = format!(
            "case {:02}: m={} n={} l={}",
            self.number, self.modules, self.nodes, self.links
        );
        Ok(inst)
    }
}

/// The 20-case suite. Dimensions grow geometrically; every case keeps
/// `m ≤ n` so the no-reuse frame-rate problem stays structurally feasible,
/// and `l` within the simple-graph bound.
pub fn paper_cases() -> Vec<CaseSpec> {
    const DIMS: [(usize, usize, usize); 20] = [
        (5, 6, 15), // the Fig. 3/4 worked small case (K6)
        (6, 8, 20),
        (8, 10, 28),
        (10, 14, 40),
        (10, 20, 60),
        (12, 25, 80),
        (14, 30, 100),
        (16, 40, 150),
        (18, 50, 200),
        (20, 60, 260),
        (25, 70, 340),
        (30, 80, 420),
        (35, 90, 520),
        (40, 100, 620),
        (45, 120, 800),
        (50, 140, 1000),
        (60, 160, 1300),
        (70, 180, 1600),
        (85, 200, 2000),
        (100, 220, 2500),
    ];
    DIMS.iter()
        .enumerate()
        .map(|(i, &(m, n, l))| CaseSpec {
            number: i + 1,
            modules: m,
            nodes: n,
            links: l,
            // one published seed per case; 0x454C5043 = "ELPC"
            seed: 0x454C_5043_u64 * 1000 + i as u64,
        })
        .collect()
}

/// The worked small instance of Fig. 3/4: 5 modules on a complete 6-node
/// network, fixed seed.
pub fn small_case() -> crate::Result<ProblemInstance> {
    let mut inst = paper_cases()[0].generate()?;
    inst.label = "Fig. 3/4 small case: 5 modules, 6 nodes (K6)".to_string();
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_monotonically_growing_cases() {
        let cases = paper_cases();
        assert_eq!(cases.len(), 20);
        for w in cases.windows(2) {
            assert!(w[0].modules <= w[1].modules);
            assert!(w[0].nodes < w[1].nodes);
            assert!(w[0].links < w[1].links);
        }
        assert_eq!(cases[0].number, 1);
        assert_eq!(cases[19].number, 20);
    }

    #[test]
    fn every_case_respects_structural_bounds() {
        for c in paper_cases() {
            assert!(c.modules >= 2);
            assert!(c.modules <= c.nodes, "case {}: m > n", c.number);
            assert!(
                c.links >= c.nodes - 1,
                "case {}: disconnected budget",
                c.number
            );
            assert!(
                c.links <= c.nodes * (c.nodes - 1) / 2,
                "case {}: too many links",
                c.number
            );
        }
    }

    #[test]
    fn small_cases_generate_valid_instances() {
        // generating all 20 is cheap enough except the largest; test 1-10
        for c in &paper_cases()[..10] {
            let inst = c.generate().unwrap();
            let (m, n, l) = inst.dims();
            assert_eq!((m, n, l), (c.modules, c.nodes, c.links));
            assert!(inst.network.validate().is_ok());
            assert!(inst.as_instance().hop_feasible(true));
        }
    }

    #[test]
    fn small_case_matches_the_figures() {
        let inst = small_case().unwrap();
        assert_eq!(inst.pipeline.len(), 5);
        assert_eq!(inst.network.node_count(), 6);
        assert!(inst.label.contains("Fig. 3/4"));
    }

    #[test]
    fn case_generation_is_reproducible() {
        let a = paper_cases()[3].generate().unwrap();
        let b = paper_cases()[3].generate().unwrap();
        assert_eq!(a.pipeline, b.pipeline);
        assert_eq!(a.src, b.src);
        assert_eq!(a.dst, b.dst);
    }
}
