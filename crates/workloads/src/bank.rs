//! Cross-instance metric-closure reuse: the topology-keyed [`ClosureBank`].
//!
//! A `SolveContext` shares the routed all-pairs work across *solvers* on
//! one instance; consecutive suite cases, parameter sweeps that hold the
//! network fixed, and repeated experiment runs still rebuilt identical
//! closures from scratch because each case owns its own context. The bank
//! closes that gap: materialized shortest-path trees are deposited under a
//! key derived from the **network fingerprint × cost model × payload set**,
//! and any later instance with the same key checks them back out as cheap
//! `Arc` clones.
//!
//! The key is deliberately strict — [`elpc_netsim::Network::fingerprint`]
//! covers every node power and every link's bandwidth/MLD bit pattern, so a
//! perturbed edge misses the bank instead of serving stale trees. Payload
//! sets are part of the key so an entry always contains exactly the trees
//! its pipeline's boundaries query (seeding is still shape-checked on
//! import). Correctness never depends on the bank: a miss just means a cold
//! closure, and checked-out trees are bit-identical to freshly built ones
//! (the bank-identity test pins this).
//!
//! The bank is `Send + Sync` (one mutex around the store, atomic
//! statistics) so a parallel sweep can share a single bank across workers.

use elpc_mapping::delta::repair_closure;
use elpc_mapping::{
    CachedTree, CostModel, Instance, MetricClosure, NetworkDelta, RepairReport, SolveContext,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bank access statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BankStats {
    /// Checkouts that found a banked closure for the key.
    pub hits: u64,
    /// Checkouts that found nothing (cold context handed out).
    pub misses: u64,
    /// Deposits that stored or enriched an entry.
    pub deposits: u64,
    /// In-place repairs ([`ClosureBank::update_in_place`]) that migrated an
    /// entry to a perturbed topology's key. Not checkouts: `hits + misses`
    /// still equals the number of [`ClosureBank::context_for`] calls.
    pub repairs: u64,
}

impl BankStats {
    /// Fraction of checkouts served from the bank (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The bank key of an instance: FNV-1a over the network fingerprint, the
/// cost-model fingerprint ([`CostModel::fingerprint`] — exhaustive over
/// the model's fields by construction), and the sorted distinct payload
/// sizes of the pipeline's stage boundaries (`f64` bit patterns).
pub fn bank_key(inst: &Instance<'_>, cost: &CostModel) -> u64 {
    let mut h = elpc_netgraph::fnv::Fnv1a::new();
    h.write_u64(inst.network.fingerprint());
    h.write_u64(cost.fingerprint());
    let n = inst.pipeline.len();
    let mut payloads: Vec<u64> = (1..n)
        .map(|j| inst.pipeline.input_bytes(j).to_bits())
        .collect();
    payloads.sort_unstable();
    payloads.dedup();
    h.write_usize(payloads.len());
    for p in payloads {
        h.write_u64(p);
    }
    h.finish()
}

/// Closure store plus FIFO eviction order, behind one mutex.
#[derive(Default)]
struct BankStore {
    entries: HashMap<u64, Arc<Vec<CachedTree>>>,
    /// Keys in first-deposit order; front is evicted first once the
    /// capacity is reached. Re-deposits of an existing key keep its slot.
    order: std::collections::VecDeque<u64>,
}

/// A topology-keyed cross-instance cache of materialized metric-closure
/// entries. Checkout seeds a fresh context from the bank; deposit saves a
/// solved context's trees back for the next instance with the same key.
///
/// Capacity-bounded: once `capacity` distinct keys are on deposit, the
/// oldest-deposited key is evicted to make room (first-in, first-out —
/// sweeps revisit topologies in waves, so deposit age tracks usefulness
/// well enough without per-hit bookkeeping). An evicted topology simply
/// solves cold again and re-deposits.
pub struct ClosureBank {
    store: Mutex<BankStore>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    deposits: AtomicU64,
    repairs: AtomicU64,
}

impl Default for ClosureBank {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl ClosureBank {
    /// Default number of distinct topologies kept on deposit. Each banked
    /// closure holds all materialized all-pairs trees of one instance, so
    /// the cap bounds memory on sweeps over many distinct networks.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// An empty bank with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty bank evicting beyond `capacity` keys (min 1).
    ///
    /// Eviction is **first-in, first-out on first deposit**: once
    /// `capacity` distinct keys are on deposit, the next *new* key evicts
    /// the oldest-deposited one. Re-depositing an existing key (even with a
    /// richer closure) keeps its original eviction slot, and an evicted
    /// topology simply solves cold and re-deposits at the back of the
    /// queue.
    ///
    /// ```
    /// use elpc_mapping::solver;
    /// use elpc_workloads::{ClosureBank, InstanceSpec};
    /// let cost = elpc_mapping::CostModel::default();
    /// let spec = InstanceSpec::sized(4, 8, 14);
    /// let bank = ClosureBank::with_capacity(2);
    /// // deposit three distinct topologies into a 2-slot bank
    /// let instances: Vec<_> = (0..3).map(|s| spec.generate(s).unwrap()).collect();
    /// for inst in &instances {
    ///     let ctx = bank.context_for(inst.as_instance(), cost, 1);
    ///     solver("elpc_delay_routed").unwrap().solve(&ctx).unwrap();
    ///     bank.deposit(&ctx);
    /// }
    /// assert_eq!(bank.len(), 2);
    /// // the oldest deposit (seed 0) was evicted; the youngest two remain
    /// let cold = bank.context_for(instances[0].as_instance(), cost, 1);
    /// assert_eq!(cold.closure().cached_trees(), 0);
    /// let warm = bank.context_for(instances[2].as_instance(), cost, 1);
    /// assert!(warm.closure().cached_trees() > 0);
    /// ```
    pub fn with_capacity(capacity: usize) -> Self {
        ClosureBank {
            store: Mutex::new(BankStore::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            deposits: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
        }
    }

    /// The eviction threshold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A context for `inst`, seeded from the bank when a closure for the
    /// instance's topology/cost/payload key is on deposit (a hit), cold
    /// otherwise (a miss). `threads` configures the context's parallel
    /// warm-up exactly as [`SolveContext::with_threads`] does.
    ///
    /// # Examples
    ///
    /// Checkout → solve → deposit; the next instance with the same
    /// topology/cost/payload key starts with every tree already built:
    ///
    /// ```
    /// use elpc_mapping::solver;
    /// use elpc_workloads::{ClosureBank, InstanceSpec};
    /// let cost = elpc_mapping::CostModel::default();
    /// let inst = InstanceSpec::sized(5, 10, 20).generate(7).unwrap();
    /// let bank = ClosureBank::new();
    ///
    /// let ctx = bank.context_for(inst.as_instance(), cost, 1); // miss
    /// solver("elpc_delay_routed").unwrap().solve(&ctx).unwrap();
    /// bank.deposit(&ctx);
    ///
    /// let warm = bank.context_for(inst.as_instance(), cost, 1); // hit
    /// let stats = bank.stats();
    /// assert_eq!((stats.hits, stats.misses), (1, 1));
    /// assert!(warm.closure().cached_trees() > 0);
    /// // the warm solve never runs a Dijkstra
    /// solver("elpc_delay_routed").unwrap().solve(&warm).unwrap();
    /// assert_eq!(warm.closure().stats().misses, 0);
    /// ```
    pub fn context_for<'a>(
        &self,
        inst: Instance<'a>,
        cost: CostModel,
        threads: usize,
    ) -> SolveContext<'a> {
        let ctx = SolveContext::with_threads(inst, cost, threads);
        let banked = self
            .store
            .lock()
            .entries
            .get(&bank_key(&inst, &cost))
            .cloned();
        match banked {
            Some(entries) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                ctx.closure().seed(&entries);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        ctx
    }

    /// Deposits `ctx`'s materialized trees under its instance key. Keeps
    /// whichever entry holds more trees, so a richer closure (more solvers
    /// ran against it) is never replaced by a poorer one; a first deposit
    /// beyond the capacity evicts the oldest-deposited key.
    pub fn deposit(&self, ctx: &SolveContext<'_>) {
        let exported = ctx.closure().export();
        if exported.is_empty() {
            return;
        }
        let key = bank_key(ctx.instance(), ctx.cost());
        let mut store = self.store.lock();
        match store.entries.get(&key) {
            Some(old) if old.len() >= exported.len() => return,
            Some(_) => {
                // enrich in place; the key keeps its eviction slot
                store.entries.insert(key, Arc::new(exported));
            }
            None => {
                while store.order.len() >= self.capacity {
                    if let Some(evicted) = store.order.pop_front() {
                        store.entries.remove(&evicted);
                    }
                }
                store.order.push_back(key);
                store.entries.insert(key, Arc::new(exported));
            }
        }
        self.deposits.fetch_add(1, Ordering::Relaxed);
    }

    /// True when a closure is on deposit under `key` (see [`bank_key`]).
    ///
    /// A *probe*, not a checkout: it touches no statistics, so
    /// `hits + misses` still equals the number of [`ClosureBank::context_for`]
    /// calls. The serving layer's request coalescer uses it to decide
    /// whether a request can check out immediately or must elect a builder
    /// for the key first.
    pub fn contains_key(&self, key: u64) -> bool {
        self.store.lock().entries.contains_key(&key)
    }

    /// Repairs the entry banked under `old_key` into the key of `inst` ×
    /// `cost` — a perturbed topology becomes a bank *hit-with-repair*
    /// instead of the guaranteed miss the strict fingerprint key would
    /// force. The entry's trees are run through the churn invalidation rule
    /// ([`elpc_mapping::delta`]): untouched trees migrate as shared `Arc`s,
    /// stale sources are rebuilt on `threads` workers, and the repaired
    /// entry is stored under the new key **in the old key's eviction
    /// slot** (the topology aged as one resident; its identity moved, not
    /// its tenure).
    ///
    /// Returns the repair accounting, or `None` when nothing is banked
    /// under `old_key` (the caller falls back to a cold solve). `delta`
    /// must be the [`NetworkDelta`] from the old entry's network to
    /// `inst.network` — the caller vouches for that pairing exactly as it
    /// vouches for `old_key`. Not a checkout and not a deposit: only the
    /// `repairs` statistic moves, so `hits + misses` still equals the
    /// number of [`ClosureBank::context_for`] calls and a subsequent
    /// checkout of the new key counts its own hit.
    pub fn update_in_place(
        &self,
        old_key: u64,
        inst: Instance<'_>,
        cost: CostModel,
        delta: &NetworkDelta,
        threads: usize,
    ) -> Option<RepairReport> {
        let entries = self.store.lock().entries.get(&old_key).cloned()?;
        let new_key = bank_key(&inst, &cost);
        if new_key == old_key {
            // value-identical topology (empty delta): nothing to migrate
            self.repairs.fetch_add(1, Ordering::Relaxed);
            return Some(RepairReport {
                total: entries.len(),
                kept: entries.len(),
                rebuilt: 0,
            });
        }
        // repair outside the lock — stale-tree rebuilds can be expensive
        let closure = MetricClosure::new(inst.network, cost);
        let report = repair_closure(&closure, &entries, delta, threads);
        let repaired = Arc::new(closure.export());

        let mut store = self.store.lock();
        store.entries.remove(&old_key);
        let slot = store.order.iter().position(|&k| k == old_key);
        match store.entries.get(&new_key) {
            // the new key is somehow already banked: richer-wins, and the
            // old key's slot simply retires
            Some(existing) if existing.len() >= repaired.len() => {
                if let Some(i) = slot {
                    store.order.remove(i);
                }
            }
            Some(_) => {
                if let Some(i) = slot {
                    store.order.remove(i);
                }
                store.entries.insert(new_key, repaired);
            }
            None => {
                match slot {
                    Some(i) => store.order[i] = new_key,
                    // the old entry was evicted while we repaired: the
                    // repaired closure is still valid, bank it as new
                    None => {
                        while store.order.len() >= self.capacity {
                            if let Some(evicted) = store.order.pop_front() {
                                store.entries.remove(&evicted);
                            }
                        }
                        store.order.push_back(new_key);
                    }
                }
                store.entries.insert(new_key, repaired);
            }
        }
        drop(store);
        self.repairs.fetch_add(1, Ordering::Relaxed);
        Some(report)
    }

    /// Access statistics so far.
    pub fn stats(&self) -> BankStats {
        BankStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            deposits: self.deposits.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
        }
    }

    /// Number of banked closures (distinct keys).
    pub fn len(&self) -> usize {
        self.store.lock().entries.len()
    }

    /// True when nothing is on deposit.
    pub fn is_empty(&self) -> bool {
        self.store.lock().entries.is_empty()
    }

    /// Drops every banked closure (statistics are kept).
    pub fn clear(&self) {
        let mut store = self.store.lock();
        store.entries.clear();
        store.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstanceSpec;
    use elpc_mapping::solver;
    use elpc_netgraph::EdgeId;
    use elpc_netsim::Link;

    fn cost() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn same_topology_hits_perturbed_topology_misses() {
        let spec = InstanceSpec::sized(5, 10, 20);
        let a = spec.generate(3).unwrap();
        let b = spec.generate(3).unwrap(); // identical draw
        let bank = ClosureBank::new();

        let ctx = bank.context_for(a.as_instance(), cost(), 1);
        solver("elpc_delay_routed").unwrap().solve(&ctx).unwrap();
        bank.deposit(&ctx);
        assert_eq!(bank.len(), 1);
        assert_eq!(bank.stats().deposits, 1);

        // contains_key is a probe: true for the deposited key, and no
        // statistics move
        let stats_before = bank.stats();
        assert!(bank.contains_key(bank_key(&a.as_instance(), &cost())));
        assert!(!bank.contains_key(0xDEAD_BEEF));
        assert_eq!(bank.stats(), stats_before);

        // identical network + pipeline → hit, and the closure starts warm
        let warm = bank.context_for(b.as_instance(), cost(), 1);
        assert_eq!(bank.stats().hits, 1);
        assert!(warm.closure().cached_trees() > 0);

        // perturb one link bandwidth → fingerprint guard forces a miss
        let mut c = spec.generate(3).unwrap();
        let old = c.network.link(EdgeId(0)).unwrap().clone();
        c.network
            .set_link_symmetric(EdgeId(0), Link::new(old.bw_mbps * 1.001, old.mld_ms))
            .unwrap();
        let cold = bank.context_for(c.as_instance(), cost(), 1);
        assert_eq!(cold.closure().cached_trees(), 0);
        // a different cost model also misses
        bank.context_for(b.as_instance(), CostModel { include_mld: false }, 1);
        assert_eq!(bank.stats().misses, 3);
    }

    #[test]
    fn banked_solve_is_bit_identical_to_cold_solve() {
        let spec = InstanceSpec::sized(6, 12, 30);
        let owned = spec.generate(11).unwrap();
        let bank = ClosureBank::new();
        let s = solver("elpc_delay_routed").unwrap();

        let cold = s
            .solve(&bank.context_for(owned.as_instance(), cost(), 1))
            .unwrap();
        // redo with a deposited closure
        let ctx = bank.context_for(owned.as_instance(), cost(), 1);
        s.solve(&ctx).unwrap();
        bank.deposit(&ctx);
        let warm_ctx = bank.context_for(owned.as_instance(), cost(), 1);
        let warm = s.solve(&warm_ctx).unwrap();
        assert_eq!(cold.objective_ms.to_bits(), warm.objective_ms.to_bits());
        assert_eq!(cold.assignment, warm.assignment);
        // the warm solve never ran a Dijkstra
        assert_eq!(warm_ctx.closure().stats().misses, 0);
    }

    #[test]
    fn capacity_evicts_oldest_deposit_first() {
        let spec = InstanceSpec::sized(4, 8, 14);
        let instances: Vec<_> = (0..3).map(|s| spec.generate(s).unwrap()).collect();
        let bank = ClosureBank::with_capacity(2);
        assert_eq!(bank.capacity(), 2);
        for inst in &instances {
            let ctx = bank.context_for(inst.as_instance(), cost(), 1);
            solver("elpc_delay_routed").unwrap().solve(&ctx).unwrap();
            bank.deposit(&ctx);
        }
        assert_eq!(bank.len(), 2, "third deposit must evict one");
        // the oldest (seed 0) is gone; the two youngest survive
        let c0 = bank.context_for(instances[0].as_instance(), cost(), 1);
        assert_eq!(c0.closure().cached_trees(), 0, "seed 0 was evicted");
        for inst in &instances[1..] {
            let c = bank.context_for(inst.as_instance(), cost(), 1);
            assert!(c.closure().cached_trees() > 0);
        }
        // an evicted topology re-deposits cleanly (evicting the next oldest)
        solver("elpc_delay_routed").unwrap().solve(&c0).unwrap();
        bank.deposit(&c0);
        assert_eq!(bank.len(), 2);
        assert!(
            bank.context_for(instances[0].as_instance(), cost(), 1)
                .closure()
                .cached_trees()
                > 0
        );
    }

    /// The re-deposit-after-eviction path, pinned at capacity 1: a new key
    /// evicts the only resident, the evicted topology checks out cold
    /// (miss), and its re-deposit cleanly evicts the usurper in turn —
    /// each eviction registers at the *back* of the FIFO queue, so the
    /// cycle never corrupts the order bookkeeping.
    #[test]
    fn capacity_one_evict_miss_redeposit_cycle() {
        let spec = InstanceSpec::sized(4, 8, 14);
        let a = spec.generate(0).unwrap();
        let b = spec.generate(1).unwrap();
        let bank = ClosureBank::with_capacity(1);
        let s = solver("elpc_delay_routed").unwrap();

        // deposit A (miss), then B (miss) — B's first deposit evicts A
        let ctx_a = bank.context_for(a.as_instance(), cost(), 1);
        s.solve(&ctx_a).unwrap();
        bank.deposit(&ctx_a);
        assert_eq!(bank.len(), 1);
        let ctx_b = bank.context_for(b.as_instance(), cost(), 1);
        s.solve(&ctx_b).unwrap();
        bank.deposit(&ctx_b);
        assert_eq!(bank.len(), 1, "capacity 1 keeps exactly one key");

        // A was evicted: its checkout is a miss and starts cold
        let cold_a = bank.context_for(a.as_instance(), cost(), 1);
        assert_eq!(cold_a.closure().cached_trees(), 0, "A must start cold");
        assert_eq!(
            bank.stats(),
            BankStats {
                hits: 0,
                misses: 3,
                deposits: 2,
                repairs: 0
            }
        );

        // re-deposit A: it evicts B and is immediately checkable-out again
        s.solve(&cold_a).unwrap();
        bank.deposit(&cold_a);
        assert_eq!(bank.len(), 1);
        assert_eq!(bank.stats().deposits, 3);
        let warm_a = bank.context_for(a.as_instance(), cost(), 1);
        assert!(warm_a.closure().cached_trees() > 0, "A is banked again");
        assert_eq!(bank.stats().hits, 1);
        // the re-deposited trees are the very Arcs A's solve built
        let solved = s.solve(&warm_a).unwrap();
        assert_eq!(
            warm_a.closure().stats().misses,
            0,
            "warm solve, no Dijkstra"
        );
        let reference = s
            .solve(&SolveContext::new(a.as_instance(), cost()))
            .unwrap();
        assert_eq!(
            solved.objective_ms.to_bits(),
            reference.objective_ms.to_bits()
        );
        // ... and B, evicted by the cycle, misses once more
        let cold_b = bank.context_for(b.as_instance(), cost(), 1);
        assert_eq!(cold_b.closure().cached_trees(), 0, "B was evicted in turn");
        assert_eq!(
            bank.stats(),
            BankStats {
                hits: 1,
                misses: 4,
                deposits: 3,
                repairs: 0
            }
        );
    }

    #[test]
    fn update_in_place_turns_a_perturbation_into_a_hit_with_repair() {
        let spec = InstanceSpec::sized(5, 12, 26);
        let base = spec.generate(21).unwrap();
        let bank = ClosureBank::new();
        let s = solver("elpc_delay_routed").unwrap();

        // bank the base topology
        let ctx = bank.context_for(base.as_instance(), cost(), 1);
        s.solve(&ctx).unwrap();
        bank.deposit(&ctx);
        let old_key = bank_key(&base.as_instance(), &cost());

        // perturb two links; the strict key would miss
        let mut pert = base.clone();
        for id in [EdgeId(0), EdgeId(4)] {
            let old = pert.network.link(id).unwrap().clone();
            pert.network
                .set_link_symmetric(id, Link::new(old.bw_mbps * 0.5, old.mld_ms))
                .unwrap();
        }
        let new_key = bank_key(&pert.as_instance(), &cost());
        assert_ne!(old_key, new_key);
        assert!(!bank.contains_key(new_key));

        let delta = NetworkDelta::between(&base.network, &pert.network).unwrap();
        let report = bank
            .update_in_place(old_key, pert.as_instance(), cost(), &delta, 1)
            .expect("old key is banked");
        assert_eq!(report.kept + report.rebuilt, report.total);
        assert!(report.total > 0);

        // the entry moved: new key banked, old key retired, same slot count
        assert!(bank.contains_key(new_key));
        assert!(!bank.contains_key(old_key));
        assert_eq!(bank.len(), 1);
        let stats = bank.stats();
        assert_eq!((stats.hits, stats.misses, stats.repairs), (0, 1, 1));

        // checking out the repaired entry is a plain hit, and the solve is
        // bit-identical to a cold solve of the perturbed instance
        let warm = bank.context_for(pert.as_instance(), cost(), 1);
        assert_eq!(bank.stats().hits, 1);
        let warm_sol = s.solve(&warm).unwrap();
        let cold_sol = s
            .solve(&SolveContext::new(pert.as_instance(), cost()))
            .unwrap();
        assert_eq!(warm_sol.assignment, cold_sol.assignment);
        assert_eq!(
            warm_sol.objective_ms.to_bits(),
            cold_sol.objective_ms.to_bits()
        );

        // repairing an unbanked key reports None and changes nothing
        assert!(bank
            .update_in_place(0xDEAD_BEEF, pert.as_instance(), cost(), &delta, 1)
            .is_none());
        assert_eq!(bank.stats().repairs, 1);
    }

    #[test]
    fn richer_deposits_replace_poorer_ones_only() {
        let spec = InstanceSpec::sized(5, 8, 16);
        let owned = spec.generate(1).unwrap();
        let bank = ClosureBank::new();
        let rich = bank.context_for(owned.as_instance(), cost(), 1);
        solver("elpc_delay_routed").unwrap().solve(&rich).unwrap();
        bank.deposit(&rich);
        let rich_count = rich.closure().cached_trees();

        // a sparser context (one tree) must not clobber the banked closure
        let poor = SolveContext::new(owned.as_instance(), cost());
        poor.routed_from(owned.src, 1e4);
        bank.deposit(&poor);
        let again = bank.context_for(owned.as_instance(), cost(), 1);
        assert_eq!(again.closure().cached_trees(), rich_count);

        bank.clear();
        assert!(bank.is_empty());
        // empty contexts deposit nothing
        bank.deposit(&SolveContext::new(owned.as_instance(), cost()));
        assert!(bank.is_empty());
    }
}
