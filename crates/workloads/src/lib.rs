//! # elpc-workloads — experiment instances and runners
//!
//! Everything §4.1 of the paper describes generating, plus the machinery to
//! run the three algorithms over it:
//!
//! * [`InstanceSpec`] / [`ProblemInstance`] — seeded random (pipeline,
//!   network, endpoints) instances with the paper's parameter ranges;
//! * [`cases`] — the 20-case suite behind Fig. 2/5/6 (the published table's
//!   exact random draws are unrecoverable from the scanned PDF, so the
//!   suite is a seeded geometric progression anchored at the paper's worked
//!   5-module/6-node small case — DESIGN.md §4);
//! * [`compare`] — runs every algorithm in the `elpc_mapping::registry`
//!   on one instance through a shared `SolveContext` (one metric-closure
//!   computation per instance, not per solver), producing the row shape of
//!   Fig. 2 plus a generic any-solver runner;
//! * [`sweep`] — a crossbeam-based parallel map that keeps experiment
//!   wall-time reasonable on large suites (each worker gets its own
//!   per-instance context, so results are thread-count-invariant);
//! * [`bank`] — the [`ClosureBank`], a topology-keyed (network fingerprint
//!   × cost model × payload set) cross-instance cache of metric-closure
//!   trees, so consecutive cases sharing a network skip the all-pairs
//!   Dijkstra work entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod cases;
pub mod compare;
mod instance;
pub mod sweep;

pub use bank::{BankStats, ClosureBank};
pub use instance::{InstanceSpec, ProblemInstance, TopologyKind};

/// Result alias shared with the mapping crate.
pub type Result<T> = std::result::Result<T, elpc_mapping::MappingError>;
