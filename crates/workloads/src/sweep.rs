//! Parallel experiment sweeps.
//!
//! Large suites (hundreds of heuristic-gap instances, scaling curves) are
//! embarrassingly parallel across instances. [`run_parallel`] is a
//! deterministic-order parallel map built on crossbeam's scoped threads:
//! work is pulled from an atomic counter, results land in their input slot,
//! so the output order never depends on scheduling.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item on `threads` worker threads, preserving input
/// order in the output. `threads == 0` means "number of CPUs".
///
/// `f` must be `Sync` (it is shared by the workers) and is called exactly
/// once per item.
pub fn run_parallel<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    let threads = threads.min(items.len()).max(1);
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *results[i].lock() = Some(r);
            });
        }
    })
    .expect("worker threads must not panic");

    results
        .into_iter()
        .map(|m| m.into_inner().expect("every slot is filled exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_parallel(&items, 8, |_, &x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn passes_indices() {
        let items = vec!["a", "b", "c"];
        let out = run_parallel(&items, 2, |i, &s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn zero_threads_means_all_cpus() {
        let items: Vec<u32> = (0..16).collect();
        let out = run_parallel(&items, 0, |_, &x| x + 1);
        assert_eq!(out.len(), 16);
        assert_eq!(out[15], 16);
    }

    #[test]
    fn single_item_single_thread() {
        let out = run_parallel(&[42], 4, |_, &x: &i32| x);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = vec![];
        let out = run_parallel(&items, 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_match_sequential_reference() {
        let items: Vec<u64> = (0..257).collect();
        let par = run_parallel(&items, 7, |i, &x| x * x + i as u64);
        let seq: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x * x + i as u64)
            .collect();
        assert_eq!(par, seq);
    }
}
