//! Registry-driven algorithm comparison on one instance — the row shape of
//! Fig. 2.
//!
//! Every algorithm is pulled from the [`elpc_mapping::registry`] and run
//! against one shared [`SolveContext`], so the routed metric closure (the
//! all-pairs Dijkstra work that dominates large cases) is computed once per
//! instance instead of once per solver. Adding an algorithm to the
//! comparison is a one-file change in `elpc_mapping::solver` — this module
//! picks it up by name.
//!
//! Evaluation semantics (see `elpc_mapping::routed` for the rationale):
//! Streamline places modules freely, so its transfers are charged at routed
//! (best multi-hop) cost; to compare like with like, the ELPC columns use
//! the routed-overlay DP variants, which are the same algorithms run on the
//! network's metric closure. The strict Eq. 1/2 values of the published DPs
//! are recorded alongside (`delay_elpc_strict` / `rate_elpc_strict`);
//! Greedy walks real edges, so its strict and routed values coincide.
//!
//! The metaheuristic columns (`delay_anneal`, `delay_genetic`,
//! `delay_tabu`, `delay_lns`, `rate_anneal`, `rate_genetic`, `rate_tabu`,
//! `rate_lns` — `elpc_mapping::metaheuristic`, `elpc_mapping::tabu`, and
//! `elpc_mapping::lns`) search the same
//! routed free-assignment space, and the **`quality_gap`** columns divide
//! the best metaheuristic objective by the exact optimum of that space:
//! `elpc_delay_routed` for delay (optimal by construction) and the
//! budgeted exhaustive `exact::max_rate_routed` for rate. A gap of 1.0
//! means the metaheuristics matched the optimum; the value is ≥ 1 whenever
//! both sides solved.
//!
//! The portfolio columns (`delay_portfolio` / `rate_portfolio`) report
//! the default `elpc_mapping::portfolio` slates' outcome.
//! [`CompareOptions::attributed`] runs the real races on the shared
//! context and records every slate member's objective, wall time, and
//! win flag as [`MemberAttribution`] rows; without attribution the
//! column is folded from the member columns already in the row — by the
//! determinism contract the two are identical, and a test pins it.

use crate::{ClosureBank, ProblemInstance};
use elpc_mapping::{
    exact, portfolio, solver, CostModel, Instance, MappingError, Objective, SolveContext,
};
use serde::{Deserialize, Serialize};

/// Outcome of one algorithm on one objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// Solved with the given objective value (ms).
    Solved {
        /// Objective in ms (delay, or bottleneck for rate mode).
        ms: f64,
    },
    /// No feasible mapping found (counted per §4.3).
    Infeasible,
    /// Solver failed for another reason (reported, never silently dropped).
    Error(String),
}

impl Outcome {
    fn from_result(r: Result<f64, MappingError>) -> Self {
        match r {
            Ok(ms) => Outcome::Solved { ms },
            Err(MappingError::Infeasible(_)) => Outcome::Infeasible,
            Err(e) => Outcome::Error(e.to_string()),
        }
    }

    /// The objective value when solved.
    pub fn ms(&self) -> Option<f64> {
        match self {
            Outcome::Solved { ms } => Some(*ms),
            _ => None,
        }
    }

    /// Frame rate (fps) when solved, interpreting the value as a bottleneck.
    pub fn fps(&self) -> Option<f64> {
        self.ms().map(elpc_netsim::units::frame_rate_fps)
    }
}

/// A full Fig. 2 row: both objectives × three algorithms.
///
/// The `delay_elpc` / `rate_elpc` columns are the routed-overlay ELPC
/// variants so that all three algorithms are compared under the *same*
/// transport semantics (Streamline places freely and is charged routed
/// transfers). The strict Eq. 1/2 ELPC values — the algorithms exactly as
/// published — are recorded alongside.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// Instance label.
    pub label: String,
    /// `(modules, nodes, links)`.
    pub dims: (usize, usize, usize),
    /// ELPC minimum end-to-end delay (ms), routed-overlay semantics.
    pub delay_elpc: Outcome,
    /// ELPC delay under the strict adjacent-path model (the paper's DP).
    pub delay_elpc_strict: Outcome,
    /// Streamline delay (routed evaluation).
    pub delay_streamline: Outcome,
    /// Greedy delay (its walks are strict and routed-equivalent).
    pub delay_greedy: Outcome,
    /// ELPC bottleneck (ms), no node reuse, routed-overlay semantics.
    pub rate_elpc: Outcome,
    /// ELPC bottleneck under the strict adjacent-path model.
    pub rate_elpc_strict: Outcome,
    /// Streamline bottleneck (routed evaluation).
    pub rate_streamline: Outcome,
    /// Greedy bottleneck.
    pub rate_greedy: Outcome,
    /// Simulated-annealing delay (routed evaluation, seeded-deterministic).
    pub delay_anneal: Outcome,
    /// Genetic-algorithm delay (routed evaluation, seeded-deterministic).
    pub delay_genetic: Outcome,
    /// Tabu-search delay (routed evaluation, seeded-deterministic).
    pub delay_tabu: Outcome,
    /// Large-neighborhood-search delay (routed, seeded-deterministic).
    pub delay_lns: Outcome,
    /// Portfolio meta-solver delay (best of the default delay slate).
    pub delay_portfolio: Outcome,
    /// Simulated-annealing bottleneck (routed, distinct hosts).
    pub rate_anneal: Outcome,
    /// Genetic-algorithm bottleneck (routed, distinct hosts).
    pub rate_genetic: Outcome,
    /// Tabu-search bottleneck (routed, distinct hosts).
    pub rate_tabu: Outcome,
    /// Large-neighborhood-search bottleneck (routed, distinct hosts).
    pub rate_lns: Outcome,
    /// Portfolio meta-solver bottleneck (best of the default rate slate).
    pub rate_portfolio: Outcome,
    /// Per-member attribution of the delay portfolio race, recorded when
    /// [`CompareOptions::attributed`] asked for it (`None` otherwise, and
    /// `None` when the race itself failed).
    pub delay_portfolio_members: Option<Vec<MemberAttribution>>,
    /// Per-member attribution of the rate portfolio race (see above).
    pub rate_portfolio_members: Option<Vec<MemberAttribution>>,
    /// The delay **quality gap**: best metaheuristic delay divided by the
    /// exact optimum of the same (routed) search space, `elpc_delay_routed`.
    /// Always ≥ 1 when present; `None` when either side failed to solve.
    pub quality_gap_delay: Option<f64>,
    /// The rate **quality gap**: best metaheuristic bottleneck divided by
    /// the exhaustive routed optimum ([`exact::max_rate_routed`]). Always
    /// ≥ 1 when present; `None` when either side failed — in particular
    /// when the exhaustive reference would exceed its enumeration budget
    /// (large instances).
    pub quality_gap_rate: Option<f64>,
}

impl CaseResult {
    /// True when ELPC's delay is no worse than both baselines (where all
    /// solved) — the Fig. 5 dominance claim for this instance.
    pub fn elpc_delay_dominates(&self) -> bool {
        let Some(e) = self.delay_elpc.ms() else {
            return false;
        };
        // routed evaluation can only flatter the baselines, so allow a
        // measurement-epsilon tolerance
        self.delay_streamline.ms().is_none_or(|s| e <= s + 1e-9)
            && self.delay_greedy.ms().is_none_or(|g| e <= g + 1e-9)
    }

    /// True when ELPC's frame rate is no worse than both baselines
    /// (where all solved) — the Fig. 6 dominance claim.
    pub fn elpc_rate_dominates(&self) -> bool {
        let Some(e) = self.rate_elpc.ms() else {
            return false;
        };
        self.rate_streamline.ms().is_none_or(|s| e <= s + 1e-9)
            && self.rate_greedy.ms().is_none_or(|g| e <= g + 1e-9)
    }
}

/// One slate member's record in a portfolio race, as surfaced per case
/// when [`CompareOptions::attributed`] is on — the serializable mirror of
/// [`elpc_mapping::MemberReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberAttribution {
    /// The member's registry name.
    pub name: String,
    /// The member's outcome.
    pub outcome: Outcome,
    /// Wall time the member's solve took (ms; informational — the winner
    /// is chosen by objective value, never by speed).
    pub elapsed_ms: f64,
    /// True for the member whose solution the portfolio returned.
    pub won: bool,
}

impl MemberAttribution {
    fn from_report(r: &portfolio::MemberReport) -> Self {
        MemberAttribution {
            name: r.name.to_string(),
            outcome: match (&r.objective_ms, &r.error) {
                (Some(ms), _) => Outcome::Solved { ms: *ms },
                (None, Some(MappingError::Infeasible(_))) => Outcome::Infeasible,
                (None, Some(e)) => Outcome::Error(e.to_string()),
                (None, None) => Outcome::Error("member reported neither value nor error".into()),
            },
            elapsed_ms: r.elapsed_ms,
            won: r.won,
        }
    }
}

/// The registry names behind the [`CaseResult`] columns, in column order.
pub const CASE_COLUMNS: [&str; 18] = [
    "elpc_delay_routed",
    "elpc_delay",
    "streamline_delay",
    "greedy_delay",
    "anneal_delay",
    "genetic_delay",
    "tabu_delay",
    "lns_delay",
    "portfolio_delay",
    "elpc_rate_routed",
    "elpc_rate",
    "streamline_rate",
    "greedy_rate",
    "anneal_rate",
    "genetic_rate",
    "tabu_rate",
    "lns_rate",
    "portfolio_rate",
];

/// Enumeration budget for the exhaustive routed-rate reference behind the
/// [`CaseResult::quality_gap_rate`] column: interior assignment spaces
/// larger than this are skipped (the column reads `None`).
pub const QUALITY_GAP_RATE_BUDGET: usize = 50_000;

/// The smallest solved objective among metaheuristic outcomes, if any.
/// `total_cmp` so a NaN objective (a degenerate cost model) orders last
/// instead of panicking the comparison.
fn best_ms(outcomes: &[&Outcome]) -> Option<f64> {
    outcomes
        .iter()
        .filter_map(|o| o.ms())
        .min_by(|a, b| a.total_cmp(b))
}

/// Runs one registered solver on a shared context, as an [`Outcome`].
pub fn run_solver(ctx: &SolveContext<'_>, name: &str) -> Outcome {
    match solver(name) {
        Some(s) => Outcome::from_result(s.solve(ctx).map(|sol| sol.objective_ms)),
        None => Outcome::Error(format!("no solver named `{name}` in the registry")),
    }
}

/// How the comparison runners build their per-instance context.
#[derive(Clone, Copy)]
pub struct CompareOptions<'b> {
    /// Cross-instance closure cache: hit on checkout, deposit after the
    /// roster ran. `None` = a cold context per instance (the default).
    pub bank: Option<&'b ClosureBank>,
    /// Warm-up thread count for the routed solvers' tree pre-build
    /// (`0` = all CPUs, `1` = lazy serial — the default). Also drives the
    /// portfolio columns' worker count: the races run concurrently exactly
    /// when the tree pre-build does.
    pub warm_threads: usize,
    /// Record per-member [`MemberAttribution`] rows for the portfolio
    /// columns (off by default: attribution carries wall times, which are
    /// not run-to-run reproducible, so golden-row comparisons leave it
    /// off).
    pub attribution: bool,
}

impl Default for CompareOptions<'_> {
    fn default() -> Self {
        CompareOptions {
            bank: None,
            warm_threads: 1,
            attribution: false,
        }
    }
}

impl<'b> CompareOptions<'b> {
    /// Options using `bank` for cross-instance reuse.
    pub fn banked(bank: &'b ClosureBank) -> Self {
        CompareOptions {
            bank: Some(bank),
            ..Default::default()
        }
    }

    /// Sets the warm-up thread count.
    pub fn warm_threads(mut self, threads: usize) -> Self {
        self.warm_threads = threads;
        self
    }

    /// Records per-member portfolio attribution in the case rows.
    pub fn attributed(mut self) -> Self {
        self.attribution = true;
        self
    }

    fn context_for<'a>(&self, view: Instance<'a>, cost: &CostModel) -> SolveContext<'a> {
        match self.bank {
            Some(bank) => bank.context_for(view, *cost, self.warm_threads),
            None => SolveContext::with_threads(view, *cost, self.warm_threads),
        }
    }

    fn finish(&self, ctx: &SolveContext<'_>) {
        if let Some(bank) = self.bank {
            bank.deposit(ctx);
        }
    }
}

/// Runs an arbitrary list of registered solvers on one instance, sharing a
/// single metric-closure context. The generic entry point for experiments
/// that want more (or different) algorithms than the Fig. 2 columns.
pub fn run_solvers(
    inst: &ProblemInstance,
    cost: &CostModel,
    names: &[&str],
) -> Vec<(String, Outcome)> {
    run_solvers_opts(inst, cost, names, CompareOptions::default())
}

/// [`run_solvers`] with explicit [`CompareOptions`]: checks the context out
/// of the bank (when one is given), runs the roster, deposits the closure
/// back. Results are bit-identical to the cold path — the bank and the
/// warm-up only change *when* trees are built, never their contents.
pub fn run_solvers_opts(
    inst: &ProblemInstance,
    cost: &CostModel,
    names: &[&str],
    opts: CompareOptions<'_>,
) -> Vec<(String, Outcome)> {
    let view = inst.as_instance();
    let ctx = opts.context_for(view, cost);
    let out = names
        .iter()
        .map(|&n| (n.to_string(), run_solver(&ctx, n)))
        .collect();
    opts.finish(&ctx);
    out
}

/// Runs one portfolio race directly (rather than through the registry
/// entry) so the per-member attribution is available when asked for.
/// The outcome is identical to `run_solver(ctx, "portfolio_*")` — the
/// registry entry calls the same function with the context's thread count.
fn run_portfolio(
    ctx: &SolveContext<'_>,
    objective: Objective,
    threads: usize,
    want_attribution: bool,
) -> (Outcome, Option<Vec<MemberAttribution>>) {
    let config = portfolio::PortfolioConfig::for_objective(objective).threads(threads);
    match portfolio::solve_portfolio(ctx, objective, &config) {
        Ok(race) => {
            let members = want_attribution.then(|| {
                race.members
                    .iter()
                    .map(MemberAttribution::from_report)
                    .collect()
            });
            (
                Outcome::Solved {
                    ms: race.solution.objective_ms,
                },
                members,
            )
        }
        Err(e) => (Outcome::from_result(Err(e)), None),
    }
}

/// The portfolio column an actual race would produce, folded from the
/// slate members' already-computed columns: the lowest solved objective
/// wins (a min over values — slate order only breaks exact ties, which a
/// min preserves), else the first hard error in slate order, else
/// infeasible. This is exactly `portfolio::solve_portfolio`'s collapse
/// rule, valid because every member is deterministic and
/// cache-content-independent — the race would recompute bit-identical
/// member values. `run_case_opts` uses it when no attribution was asked
/// for, sparing the row a second full metaheuristic pass per objective;
/// the attributed path runs the real race, and the two are pinned equal
/// by test.
fn derive_portfolio(slate_columns: &[&Outcome]) -> Outcome {
    if let Some(ms) = best_ms(slate_columns) {
        return Outcome::Solved { ms };
    }
    for o in slate_columns {
        if let Outcome::Error(e) = o {
            return Outcome::Error(e.clone());
        }
    }
    Outcome::Infeasible
}

/// Runs all eighteen [`CASE_COLUMNS`] solver×objective combinations on one
/// instance through the registry — plus the exhaustive routed-rate
/// reference behind the `quality_gap` columns — sharing one metric-closure
/// context across all of them.
pub fn run_case(inst: &ProblemInstance, cost: &CostModel) -> CaseResult {
    run_case_opts(inst, cost, CompareOptions::default())
}

/// [`run_case`] with explicit [`CompareOptions`] (bank + warm-up threads).
pub fn run_case_opts(
    inst: &ProblemInstance,
    cost: &CostModel,
    opts: CompareOptions<'_>,
) -> CaseResult {
    let view = inst.as_instance();
    let ctx = opts.context_for(view, cost);
    // the metaheuristics run after the DPs so every candidate evaluation
    // hits an already-warm metric closure; the portfolio races run last,
    // re-racing the whole roster on the fully warm context
    let mut row = CaseResult {
        label: inst.label.clone(),
        dims: inst.dims(),
        delay_elpc: run_solver(&ctx, "elpc_delay_routed"),
        delay_elpc_strict: run_solver(&ctx, "elpc_delay"),
        delay_streamline: run_solver(&ctx, "streamline_delay"),
        delay_greedy: run_solver(&ctx, "greedy_delay"),
        rate_elpc: run_solver(&ctx, "elpc_rate_routed"),
        rate_elpc_strict: run_solver(&ctx, "elpc_rate"),
        rate_streamline: run_solver(&ctx, "streamline_rate"),
        rate_greedy: run_solver(&ctx, "greedy_rate"),
        delay_anneal: run_solver(&ctx, "anneal_delay"),
        delay_genetic: run_solver(&ctx, "genetic_delay"),
        delay_tabu: run_solver(&ctx, "tabu_delay"),
        delay_lns: run_solver(&ctx, "lns_delay"),
        delay_portfolio: Outcome::Infeasible, // filled below
        rate_anneal: run_solver(&ctx, "anneal_rate"),
        rate_genetic: run_solver(&ctx, "genetic_rate"),
        rate_tabu: run_solver(&ctx, "tabu_rate"),
        rate_lns: run_solver(&ctx, "lns_rate"),
        rate_portfolio: Outcome::Infeasible, // filled below
        delay_portfolio_members: None,
        rate_portfolio_members: None,
        quality_gap_delay: None,
        quality_gap_rate: None,
    };
    if opts.attribution {
        // the real races, for the per-member elapsed/won records
        let (outcome, members) = run_portfolio(&ctx, Objective::MinDelay, opts.warm_threads, true);
        row.delay_portfolio = outcome;
        row.delay_portfolio_members = members;
        let (outcome, members) = run_portfolio(&ctx, Objective::MaxRate, opts.warm_threads, true);
        row.rate_portfolio = outcome;
        row.rate_portfolio_members = members;
    } else {
        // no attribution wanted: fold the slate's columns (in slate
        // order) instead of re-running six solvers per objective
        row.delay_portfolio = derive_portfolio(&[
            &row.delay_elpc,
            &row.delay_streamline,
            &row.delay_greedy,
            &row.delay_tabu,
            &row.delay_anneal,
            &row.delay_genetic,
        ]);
        row.rate_portfolio = derive_portfolio(&[
            &row.rate_elpc,
            &row.rate_streamline,
            &row.rate_greedy,
            &row.rate_tabu,
            &row.rate_anneal,
            &row.rate_genetic,
        ]);
    }
    // delay gap: `elpc_delay_routed` is the exact optimum of the routed
    // free-assignment space the metaheuristics search, so the ratio is a
    // true optimality gap (≥ 1 up to float noise)
    row.quality_gap_delay = best_ms(&[
        &row.delay_anneal,
        &row.delay_genetic,
        &row.delay_tabu,
        &row.delay_lns,
    ])
    .zip(row.delay_elpc.ms())
    .map(|(meta, exact)| meta / exact);
    // rate gap: the exhaustive routed reference, skipped (None) beyond the
    // enumeration budget — and not run at all when no metaheuristic found
    // a feasible rate assignment (the numerator drives the enumeration)
    row.quality_gap_rate = best_ms(&[
        &row.rate_anneal,
        &row.rate_genetic,
        &row.rate_tabu,
        &row.rate_lns,
    ])
    .and_then(|meta| {
        exact::max_rate_routed(
            &ctx,
            exact::ExactLimits {
                budget: QUALITY_GAP_RATE_BUDGET,
            },
        )
        .ok()
        .map(|s| meta / s.objective_ms)
    });
    opts.finish(&ctx);
    row
}

/// The sweep driver: every instance through [`run_case_opts`] on `threads`
/// workers (`0` = all CPUs), sharing `opts.bank` across workers when one is
/// given — cases with the same topology/cost/payload key then reuse one
/// closure across the whole sweep. Output order matches input order and is
/// thread-count-invariant.
pub fn run_cases(
    instances: &[ProblemInstance],
    cost: &CostModel,
    threads: usize,
    opts: CompareOptions<'_>,
) -> Vec<CaseResult> {
    crate::sweep::run_parallel(instances, threads, |_, inst| {
        run_case_opts(inst, cost, opts)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::paper_cases;

    #[test]
    fn small_cases_produce_complete_rows() {
        let cost = CostModel::default();
        for case in &paper_cases()[..4] {
            let inst = case.generate().unwrap();
            let row = run_case(&inst, &cost);
            assert_eq!(row.dims, (case.modules, case.nodes, case.links));
            // ELPC delay always solves on feasible suite instances
            assert!(
                row.delay_elpc.ms().is_some(),
                "case {}: {:?}",
                case.number,
                row.delay_elpc
            );
            // no solver may crash
            for o in [
                &row.delay_streamline,
                &row.delay_greedy,
                &row.rate_elpc,
                &row.rate_streamline,
                &row.rate_greedy,
            ] {
                assert!(!matches!(o, Outcome::Error(_)), "unexpected error: {o:?}");
            }
        }
    }

    #[test]
    fn elpc_dominates_greedy_on_the_suite_prefix() {
        let cost = CostModel::default();
        for case in &paper_cases()[..4] {
            let inst = case.generate().unwrap();
            let row = run_case(&inst, &cost);
            if let (Some(e), Some(g)) = (row.delay_elpc.ms(), row.delay_greedy.ms()) {
                assert!(e <= g + 1e-9, "case {}: ELPC {e} > greedy {g}", case.number);
            }
        }
    }

    #[test]
    fn run_solvers_covers_arbitrary_registry_subsets() {
        let cost = CostModel::default();
        let inst = paper_cases()[0].generate().unwrap();
        let rows = run_solvers(&inst, &cost, &CASE_COLUMNS);
        assert_eq!(rows.len(), CASE_COLUMNS.len());
        for (name, outcome) in &rows {
            assert!(!matches!(outcome, Outcome::Error(_)), "{name}: {outcome:?}");
        }
        // unknown names surface as reported errors, never panics
        let rows = run_solvers(&inst, &cost, &["nonexistent_algorithm"]);
        assert!(matches!(rows[0].1, Outcome::Error(_)));
    }

    #[test]
    fn quality_gap_is_at_least_one_on_the_suite_prefix() {
        let cost = CostModel::default();
        for case in &paper_cases()[..3] {
            let inst = case.generate().unwrap();
            let row = run_case(&inst, &cost);
            let gap = row
                .quality_gap_delay
                .expect("small cases always produce a delay gap");
            assert!(
                gap >= 1.0 - 1e-9,
                "case {}: delay gap {gap} < 1 — metaheuristic beat the routed optimum",
                case.number
            );
            if let Some(gap) = row.quality_gap_rate {
                assert!(
                    gap >= 1.0 - 1e-9,
                    "case {}: rate gap {gap} < 1",
                    case.number
                );
            } else {
                assert!(
                    case.nodes > 8,
                    "case {}: rate gap missing on a tiny instance",
                    case.number
                );
            }
        }
    }

    #[test]
    fn portfolio_columns_never_lose_and_attribute_on_request() {
        let cost = CostModel::default();
        let inst = paper_cases()[0].generate().unwrap();
        let plain = run_case(&inst, &cost);
        // attribution is off by default (golden rows stay reproducible)
        assert!(plain.delay_portfolio_members.is_none());
        assert!(plain.rate_portfolio_members.is_none());
        // the portfolio can never lose to any of its slate's columns
        let d = plain.delay_portfolio.ms().expect("case 1 delay solves");
        for o in [
            &plain.delay_elpc,
            &plain.delay_streamline,
            &plain.delay_greedy,
            &plain.delay_anneal,
            &plain.delay_genetic,
            &plain.delay_tabu,
        ] {
            if let Some(ms) = o.ms() {
                assert!(d <= ms + 1e-9, "portfolio {d} lost to a member at {ms}");
            }
        }

        let row = run_case_opts(&inst, &cost, CompareOptions::default().attributed());
        for (portfolio_outcome, members) in [
            (&row.delay_portfolio, row.delay_portfolio_members.as_ref()),
            (&row.rate_portfolio, row.rate_portfolio_members.as_ref()),
        ] {
            let members = members.expect("attribution was requested");
            assert_eq!(members.len(), 6, "default slates have six members");
            assert_eq!(members.iter().filter(|m| m.won).count(), 1);
            let won = members.iter().find(|m| m.won).unwrap();
            assert_eq!(won.outcome.ms(), portfolio_outcome.ms());
        }
        // attribution never changes the outcome columns
        assert_eq!(row.delay_portfolio, plain.delay_portfolio);
        assert_eq!(row.rate_portfolio, plain.rate_portfolio);
    }

    #[test]
    fn outcome_accessors() {
        let o = Outcome::Solved { ms: 100.0 };
        assert_eq!(o.ms(), Some(100.0));
        assert_eq!(o.fps(), Some(10.0));
        assert_eq!(Outcome::Infeasible.ms(), None);
        assert_eq!(Outcome::Error("x".into()).fps(), None);
    }

    #[test]
    fn sweep_with_bank_reuses_the_closure_across_same_network_cases() {
        let cost = CostModel::default();
        let inst = paper_cases()[1].generate().unwrap();
        let baseline = run_case(&inst, &cost);

        // four cases sharing one network: the first checkout misses, every
        // later one (in whatever worker order) hits the banked closure
        let suite = vec![inst.clone(), inst.clone(), inst.clone(), inst];
        let bank = ClosureBank::new();
        let rows = run_cases(&suite, &cost, 2, CompareOptions::banked(&bank));
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row, &baseline, "bank must not change any result");
        }
        let stats = bank.stats();
        assert_eq!(stats.hits + stats.misses, 4);
        assert!(
            stats.hits >= 1,
            "cases sharing a network must hit the bank (stats: {stats:?})"
        );
        assert_eq!(bank.len(), 1, "one topology, one banked closure");
    }

    #[test]
    fn rows_serialize_for_the_harness() {
        let cost = CostModel::default();
        let inst = paper_cases()[0].generate().unwrap();
        let row = run_case(&inst, &cost);
        let json = serde_json::to_string(&row).unwrap();
        let back: CaseResult = serde_json::from_str(&json).unwrap();
        assert_eq!(row, back);
    }
}
