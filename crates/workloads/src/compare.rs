//! Three-algorithm comparison on one instance — the row shape of Fig. 2.
//!
//! Evaluation semantics (see `elpc_mapping::routed` for the rationale):
//! Streamline places modules freely, so its transfers are charged at routed
//! (best multi-hop) cost; to compare like with like, the ELPC columns use
//! the routed-overlay DP variants (`solve_routed`), which are the same
//! algorithms run on the network's metric closure. The strict Eq. 1/2
//! values of the published DPs are recorded alongside
//! (`delay_elpc_strict` / `rate_elpc_strict`); Greedy walks real edges, so
//! its strict and routed values coincide.

use crate::ProblemInstance;
use elpc_mapping::{elpc_delay, elpc_rate, greedy, streamline, CostModel, MappingError};
use serde::{Deserialize, Serialize};

/// Outcome of one algorithm on one objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// Solved with the given objective value (ms).
    Solved {
        /// Objective in ms (delay, or bottleneck for rate mode).
        ms: f64,
    },
    /// No feasible mapping found (counted per §4.3).
    Infeasible,
    /// Solver failed for another reason (reported, never silently dropped).
    Error(String),
}

impl Outcome {
    fn from_result(r: Result<f64, MappingError>) -> Self {
        match r {
            Ok(ms) => Outcome::Solved { ms },
            Err(MappingError::Infeasible(_)) => Outcome::Infeasible,
            Err(e) => Outcome::Error(e.to_string()),
        }
    }

    /// The objective value when solved.
    pub fn ms(&self) -> Option<f64> {
        match self {
            Outcome::Solved { ms } => Some(*ms),
            _ => None,
        }
    }

    /// Frame rate (fps) when solved, interpreting the value as a bottleneck.
    pub fn fps(&self) -> Option<f64> {
        self.ms().map(elpc_netsim::units::frame_rate_fps)
    }
}

/// A full Fig. 2 row: both objectives × three algorithms.
///
/// The `delay_elpc` / `rate_elpc` columns are the routed-overlay ELPC
/// variants so that all three algorithms are compared under the *same*
/// transport semantics (Streamline places freely and is charged routed
/// transfers). The strict Eq. 1/2 ELPC values — the algorithms exactly as
/// published — are recorded alongside.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// Instance label.
    pub label: String,
    /// `(modules, nodes, links)`.
    pub dims: (usize, usize, usize),
    /// ELPC minimum end-to-end delay (ms), routed-overlay semantics.
    pub delay_elpc: Outcome,
    /// ELPC delay under the strict adjacent-path model (the paper's DP).
    pub delay_elpc_strict: Outcome,
    /// Streamline delay (routed evaluation).
    pub delay_streamline: Outcome,
    /// Greedy delay (its walks are strict and routed-equivalent).
    pub delay_greedy: Outcome,
    /// ELPC bottleneck (ms), no node reuse, routed-overlay semantics.
    pub rate_elpc: Outcome,
    /// ELPC bottleneck under the strict adjacent-path model.
    pub rate_elpc_strict: Outcome,
    /// Streamline bottleneck (routed evaluation).
    pub rate_streamline: Outcome,
    /// Greedy bottleneck.
    pub rate_greedy: Outcome,
}

impl CaseResult {
    /// True when ELPC's delay is no worse than both baselines (where all
    /// solved) — the Fig. 5 dominance claim for this instance.
    pub fn elpc_delay_dominates(&self) -> bool {
        let Some(e) = self.delay_elpc.ms() else {
            return false;
        };
        // routed evaluation can only flatter the baselines, so allow a
        // measurement-epsilon tolerance
        self.delay_streamline.ms().map_or(true, |s| e <= s + 1e-9)
            && self.delay_greedy.ms().map_or(true, |g| e <= g + 1e-9)
    }

    /// True when ELPC's frame rate is no worse than both baselines
    /// (where all solved) — the Fig. 6 dominance claim.
    pub fn elpc_rate_dominates(&self) -> bool {
        let Some(e) = self.rate_elpc.ms() else {
            return false;
        };
        self.rate_streamline.ms().map_or(true, |s| e <= s + 1e-9)
            && self.rate_greedy.ms().map_or(true, |g| e <= g + 1e-9)
    }
}

/// ELPC rate under routed semantics, as a small portfolio: the routed DP
/// with a modestly widened label set (ablation A2 showed K-best labels
/// recover most single-label misses), falling back to the strict DP's
/// mapping re-evaluated under routed transport. Both members are ELPC
/// variants; the portfolio only papers over heuristic label misses.
fn best_rate_routed(
    view: &elpc_mapping::Instance<'_>,
    cost: &CostModel,
) -> Result<f64, MappingError> {
    // wider label sets are cheap on small networks and recover nearly all
    // single-label misses; large networks keep a modest width
    let k_labels = if view.network.node_count() <= 100 { 16 } else { 12 };
    let config = elpc_rate::RateConfig { k_labels };

    // portfolio members: (routed objective, assignment)
    let mut candidates: Vec<(f64, Vec<elpc_mapping::NodeId>)> = Vec::new();
    if let Ok(r) = elpc_rate::solve_routed_with(view, cost, config) {
        candidates.push((r.objective_ms, r.assignment));
    }
    if let Ok(s) = elpc_rate::solve_with(view, cost, config) {
        let a = s.mapping.assignment();
        if let Ok(b) = elpc_mapping::routed::routed_bottleneck_ms(view, cost, &a, true) {
            candidates.push((b, a));
        }
    }
    let Some((_, mut best)) = candidates
        .into_iter()
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("objectives are not NaN"))
    else {
        return Err(MappingError::Infeasible(
            "no ELPC rate variant found a feasible placement".into(),
        ));
    };
    // local-search polish absorbs residual label-pruning misses
    let sweeps = 4;
    elpc_mapping::routed::polish_rate_assignment(view, cost, &mut best, sweeps)
}

/// Runs all six solver×objective combinations on one instance.
pub fn run_case(inst: &ProblemInstance, cost: &CostModel) -> CaseResult {
    let view = inst.as_instance();
    CaseResult {
        label: inst.label.clone(),
        dims: inst.dims(),
        delay_elpc: Outcome::from_result(
            elpc_delay::solve_routed(&view, cost).map(|s| s.objective_ms),
        ),
        delay_elpc_strict: Outcome::from_result(
            elpc_delay::solve(&view, cost).map(|s| s.delay_ms),
        ),
        delay_streamline: Outcome::from_result(
            streamline::solve_min_delay(&view, cost).map(|s| s.objective_ms),
        ),
        delay_greedy: Outcome::from_result(greedy::solve_min_delay(&view, cost).map(|s| s.delay_ms)),
        rate_elpc: Outcome::from_result(best_rate_routed(&view, cost)),
        rate_elpc_strict: Outcome::from_result(
            elpc_rate::solve(&view, cost).map(|s| s.bottleneck_ms),
        ),
        rate_streamline: Outcome::from_result(
            streamline::solve_max_rate(&view, cost).map(|s| s.objective_ms),
        ),
        rate_greedy: Outcome::from_result(
            greedy::solve_max_rate(&view, cost).map(|s| s.bottleneck_ms),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::paper_cases;

    #[test]
    fn small_cases_produce_complete_rows() {
        let cost = CostModel::default();
        for case in &paper_cases()[..4] {
            let inst = case.generate().unwrap();
            let row = run_case(&inst, &cost);
            assert_eq!(row.dims, (case.modules, case.nodes, case.links));
            // ELPC delay always solves on feasible suite instances
            assert!(row.delay_elpc.ms().is_some(), "case {}: {:?}", case.number, row.delay_elpc);
            // no solver may crash
            for o in [
                &row.delay_streamline,
                &row.delay_greedy,
                &row.rate_elpc,
                &row.rate_streamline,
                &row.rate_greedy,
            ] {
                assert!(!matches!(o, Outcome::Error(_)), "unexpected error: {o:?}");
            }
        }
    }

    #[test]
    fn elpc_dominates_greedy_on_the_suite_prefix() {
        let cost = CostModel::default();
        for case in &paper_cases()[..4] {
            let inst = case.generate().unwrap();
            let row = run_case(&inst, &cost);
            if let (Some(e), Some(g)) = (row.delay_elpc.ms(), row.delay_greedy.ms()) {
                assert!(e <= g + 1e-9, "case {}: ELPC {e} > greedy {g}", case.number);
            }
        }
    }

    #[test]
    fn outcome_accessors() {
        let o = Outcome::Solved { ms: 100.0 };
        assert_eq!(o.ms(), Some(100.0));
        assert_eq!(o.fps(), Some(10.0));
        assert_eq!(Outcome::Infeasible.ms(), None);
        assert_eq!(Outcome::Error("x".into()).fps(), None);
    }

    #[test]
    fn rows_serialize_for_the_harness() {
        let cost = CostModel::default();
        let inst = paper_cases()[0].generate().unwrap();
        let row = run_case(&inst, &cost);
        let json = serde_json::to_string(&row).unwrap();
        let back: CaseResult = serde_json::from_str(&json).unwrap();
        assert_eq!(row, back);
    }
}
