//! Seeded random problem instances (§4.1).

use elpc_mapping::{Instance, MappingError, NodeId};
use elpc_netsim::{Link, Network, Node};
use elpc_pipeline::gen::PipelineSpec;
use elpc_pipeline::Pipeline;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Which topology family to draw the network from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Uniform random connected graph with an exact link budget — the
    /// paper's primary shape ("randomly varying … the number of links").
    RandomConnected,
    /// Waxman geometric graph (internet-like); the link budget is advisory
    /// (Waxman draws its own edge count).
    Waxman {
        /// Waxman α (link density).
        alpha: f64,
        /// Waxman β (distance decay).
        beta: f64,
    },
    /// Ring with random chords (long thin topologies that stress the
    /// no-reuse mapping).
    RingWithChords,
    /// Barabási–Albert scale-free graph: each new node attaches to `attach`
    /// existing nodes preferentially by degree. The heavy-tailed hub
    /// structure of internet-scale deployments; the link budget is
    /// advisory (`≈ n·attach` links are drawn).
    ScaleFree {
        /// Links added per new node (`1 <= attach < n`).
        attach: usize,
    },
    /// Watts–Strogatz small-world graph: ring lattice of degree `k` with
    /// each lattice edge rewired with probability `beta`. High clustering,
    /// short paths; the link budget is advisory (`≈ n·k/2` links).
    SmallWorld {
        /// Lattice degree (even, `2 <= k < n`).
        k: usize,
        /// Rewiring probability in `[0, 1]`.
        beta: f64,
    },
}

/// Generation ranges for one problem instance, mirroring the §4.1 attribute
/// list: module count/complexities/data sizes, node count/powers, link
/// count/bandwidths/MLDs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Number of pipeline modules `m` (≥ 2, including source and sink).
    pub modules: usize,
    /// Number of network nodes `n`.
    pub nodes: usize,
    /// Number of undirected links `l`.
    pub links: usize,
    /// Topology family.
    pub topology: TopologyKind,
    /// Node processing power range (complexity·bytes per ms).
    pub power: Range<f64>,
    /// Link bandwidth range (Mbit/s).
    pub bw_mbps: Range<f64>,
    /// Link minimum delay range (ms).
    pub mld_ms: Range<f64>,
    /// Pipeline parameter ranges.
    pub pipeline: PipelineSpec,
}

impl InstanceSpec {
    /// A spec with the suite's default parameter ranges: workstation-to-
    /// cluster node powers, WAN-like 1–1000 Mbit/s links with 0.1–10 ms
    /// MLDs, megabyte-scale datasets.
    ///
    /// The size-factor range is centered near 1.0 so that per-stage data
    /// sizes neither vanish nor explode along long pipelines; total
    /// pipeline work then grows with the module count, which is what gives
    /// Fig. 5 its "delay generally increases with problem size" trend.
    pub fn sized(modules: usize, nodes: usize, links: usize) -> Self {
        InstanceSpec {
            modules,
            nodes,
            links,
            topology: TopologyKind::RandomConnected,
            power: 50.0..5000.0,
            bw_mbps: 1.0..1000.0,
            mld_ms: 0.1..10.0,
            pipeline: PipelineSpec {
                modules,
                complexity: 0.2..4.0,
                source_bytes: 8e5..2.5e6,
                // near-zero drift in log space: long pipelines keep
                // megabyte-scale stage data, so total work grows ~linearly
                // with the module count (the Fig. 5 trend)
                size_factor: 0.7..1.35,
            },
        }
    }

    /// Draws a full problem instance from the spec with a deterministic
    /// seed. Endpoint selection follows §4.1 ("the system knows where the
    /// raw data is stored and where an end user is located"): the source is
    /// node 0; the destination is the farthest node whose hop distance
    /// still permits a feasible delay mapping (`hops ≤ m − 1`), making the
    /// instance non-trivial without being structurally impossible.
    pub fn generate(&self, seed: u64) -> crate::Result<ProblemInstance> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let topo = match self.topology {
            TopologyKind::RandomConnected => {
                elpc_netgraph::gen::random_connected(self.nodes, self.links, &mut rng)
                    .map_err(elpc_netsim::NetworkError::from)?
            }
            TopologyKind::Waxman { alpha, beta } => {
                elpc_netgraph::gen::waxman(self.nodes, alpha, beta, &mut rng)
                    .map_err(elpc_netsim::NetworkError::from)?
            }
            TopologyKind::RingWithChords => {
                let chords = self.links.saturating_sub(self.nodes);
                elpc_netgraph::gen::ring_with_chords(self.nodes, chords, &mut rng)
                    .map_err(elpc_netsim::NetworkError::from)?
            }
            TopologyKind::ScaleFree { attach } => {
                elpc_netgraph::gen::barabasi_albert(self.nodes, attach, &mut rng)
                    .map_err(elpc_netsim::NetworkError::from)?
            }
            TopologyKind::SmallWorld { k, beta } => {
                elpc_netgraph::gen::watts_strogatz(self.nodes, k, beta, &mut rng)
                    .map_err(elpc_netsim::NetworkError::from)?
            }
        };
        let powers: Vec<f64> = (0..self.nodes)
            .map(|_| sample(&mut rng, &self.power))
            .collect();
        let mut link_rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(0x9E3779B97F4A7C15));
        let network = Network::from_topology(
            &topo,
            |i| Node::with_power(powers[i]),
            |_, _| {
                Link::new(
                    sample(&mut link_rng, &self.bw_mbps),
                    sample(&mut link_rng, &self.mld_ms),
                )
            },
        )?;
        let pipeline = self.pipeline.generate(&mut rng)?;

        let src = NodeId(0);
        let hops = elpc_netgraph::algo::hop_distances(network.graph(), src);
        let budget = (self.modules - 1) as u32;
        let dst = network
            .node_ids()
            .filter(|v| *v != src)
            .filter_map(|v| hops[v.index()].map(|d| (d, v)))
            .filter(|(d, _)| *d <= budget)
            .max_by_key(|(d, v)| (*d, std::cmp::Reverse(v.0)))
            .map(|(_, v)| v)
            .ok_or_else(|| {
                MappingError::Infeasible(
                    "no destination is reachable within the module budget".into(),
                )
            })?;

        Ok(ProblemInstance {
            network,
            pipeline,
            src,
            dst,
            label: format!(
                "m{} n{} l{} seed{seed}",
                self.modules, self.nodes, self.links
            ),
        })
    }
}

fn sample<R: Rng>(rng: &mut R, r: &Range<f64>) -> f64 {
    if r.end > r.start {
        rng.gen_range(r.start..r.end)
    } else {
        r.start
    }
}

/// An owned problem instance: network + pipeline + pinned endpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProblemInstance {
    /// The transport network.
    pub network: Network,
    /// The computing pipeline.
    pub pipeline: Pipeline,
    /// Source node (module 0 / raw data location).
    pub src: NodeId,
    /// Destination node (last module / end user).
    pub dst: NodeId,
    /// Human-readable label for tables.
    pub label: String,
}

impl ProblemInstance {
    /// Borrowed view for the solvers.
    pub fn as_instance(&self) -> Instance<'_> {
        Instance::new(&self.network, &self.pipeline, self.src, self.dst)
            .expect("owned instances have valid endpoints")
    }

    /// `(modules, nodes, links)` — the row header of Fig. 2.
    pub fn dims(&self) -> (usize, usize, usize) {
        (
            self.pipeline.len(),
            self.network.node_count(),
            self.network.link_count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = InstanceSpec::sized(6, 12, 24);
        let a = spec.generate(7).unwrap();
        let b = spec.generate(7).unwrap();
        assert_eq!(a.network.node_count(), b.network.node_count());
        assert_eq!(a.pipeline, b.pipeline);
        assert_eq!(a.src, b.src);
        assert_eq!(a.dst, b.dst);
        let c = spec.generate(8).unwrap();
        assert!(
            a.pipeline != c.pipeline || a.dst != c.dst || {
                // networks differ structurally almost surely; compare powers
                let pa = a.network.power(NodeId(0));
                let pc = c.network.power(NodeId(0));
                pa != pc
            }
        );
    }

    #[test]
    fn dims_match_the_spec() {
        let spec = InstanceSpec::sized(8, 15, 40);
        let inst = spec.generate(3).unwrap();
        assert_eq!(inst.dims(), (8, 15, 40));
        assert!(inst.network.validate().is_ok());
    }

    #[test]
    fn endpoints_admit_a_delay_mapping() {
        for seed in 0..20 {
            let spec = InstanceSpec::sized(5, 10, 20);
            let inst = spec.generate(seed).unwrap();
            let view = inst.as_instance();
            assert!(view.hop_feasible(true), "seed {seed} infeasible for delay");
        }
    }

    #[test]
    fn destination_prefers_distance() {
        // with a huge module budget the farthest node is chosen
        let spec = InstanceSpec::sized(64, 30, 45);
        let inst = spec.generate(11).unwrap();
        let hops = elpc_netgraph::algo::hop_distances(inst.network.graph(), inst.src);
        let chosen = hops[inst.dst.index()].unwrap();
        let max = inst
            .network
            .node_ids()
            .filter_map(|v| hops[v.index()])
            .max()
            .unwrap();
        assert_eq!(chosen, max);
    }

    #[test]
    fn waxman_and_ring_topologies_generate() {
        let mut spec = InstanceSpec::sized(5, 20, 40);
        spec.topology = TopologyKind::Waxman {
            alpha: 0.4,
            beta: 0.4,
        };
        let inst = spec.generate(1).unwrap();
        assert!(inst.network.validate().is_ok());
        let mut spec = InstanceSpec::sized(5, 20, 30);
        spec.topology = TopologyKind::RingWithChords;
        let inst = spec.generate(1).unwrap();
        assert_eq!(inst.network.link_count(), 30);
    }

    #[test]
    fn scale_free_and_small_world_topologies_generate() {
        let mut spec = InstanceSpec::sized(6, 40, 0);
        spec.topology = TopologyKind::ScaleFree { attach: 2 };
        let inst = spec.generate(5).unwrap();
        assert!(inst.network.validate().is_ok());
        assert!(inst.network.link_count() >= 39); // connected at minimum
        let mut spec = InstanceSpec::sized(6, 40, 0);
        spec.topology = TopologyKind::SmallWorld { k: 4, beta: 0.2 };
        let inst = spec.generate(5).unwrap();
        assert!(inst.network.validate().is_ok());
        // WS draws ~ n*k/2 links regardless of the advisory budget
        assert!(inst.network.link_count() >= 40);
        // determinism flows through the seeded RNG
        let again = spec.generate(5).unwrap();
        assert_eq!(inst.network.link_count(), again.network.link_count());
        assert_eq!(inst.dst, again.dst);
    }

    #[test]
    fn labels_carry_dimensions() {
        let spec = InstanceSpec::sized(5, 9, 14);
        let inst = spec.generate(42).unwrap();
        assert!(inst.label.contains("m5"));
        assert!(inst.label.contains("n9"));
        assert!(inst.label.contains("l14"));
        assert!(inst.label.contains("seed42"));
    }

    #[test]
    fn impossible_link_budgets_error() {
        let spec = InstanceSpec::sized(5, 10, 3);
        assert!(spec.generate(0).is_err());
    }
}
